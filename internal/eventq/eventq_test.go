package eventq

import (
	"container/heap"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestOrdering(t *testing.T) {
	var q Queue
	var got []int
	q.At(3, func() { got = append(got, 3) })
	q.At(1, func() { got = append(got, 1) })
	q.At(2, func() { got = append(got, 2) })
	q.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("order = %v", got)
	}
	if q.Now() != 3 {
		t.Errorf("Now = %v, want 3", q.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	var q Queue
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		q.At(1, func() { got = append(got, i) })
	}
	q.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events out of order: %v", got)
		}
	}
}

func TestAfterAndNesting(t *testing.T) {
	var q Queue
	var got []float64
	q.At(1, func() {
		q.After(0.5, func() { got = append(got, q.Now()) })
	})
	q.Run()
	if len(got) != 1 || got[0] != 1.5 {
		t.Errorf("nested After = %v", got)
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	var q Queue
	q.At(5, func() {})
	q.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past should panic")
		}
	}()
	q.At(1, func() {})
}

func TestRunUntil(t *testing.T) {
	var q Queue
	fired := map[float64]bool{}
	for _, tt := range []float64{1, 2, 3, 4} {
		tt := tt
		q.At(tt, func() { fired[tt] = true })
	}
	q.RunUntil(2)
	if !fired[1] || !fired[2] || fired[3] {
		t.Errorf("RunUntil(2) fired %v", fired)
	}
	if q.Now() != 2 {
		t.Errorf("Now = %v, want 2", q.Now())
	}
	q.RunFor(1)
	if !fired[3] || fired[4] {
		t.Errorf("RunFor(1) fired %v", fired)
	}
}

func TestStepAndLen(t *testing.T) {
	var q Queue
	q.At(1, func() {})
	q.At(2, func() {})
	if q.Len() != 2 {
		t.Errorf("Len = %d", q.Len())
	}
	if !q.Step() || q.Len() != 1 || q.Steps() != 1 {
		t.Error("Step bookkeeping wrong")
	}
	q.Run()
	if q.Step() {
		t.Error("Step on empty queue should return false")
	}
}

func TestInfiniteSchedulingPanics(t *testing.T) {
	for name, tt := range map[string]float64{"+Inf": math.Inf(1), "NaN": math.NaN()} {
		tt := tt
		t.Run(name, func(t *testing.T) {
			var q Queue
			defer func() {
				if recover() == nil {
					t.Errorf("scheduling at %v should panic", tt)
				}
			}()
			q.At(tt, func() {})
		})
	}
	// -Inf is simply "in the past" once the clock has started; it must
	// panic too, via the causality check.
	t.Run("-Inf", func(t *testing.T) {
		var q Queue
		defer func() {
			if recover() == nil {
				t.Error("scheduling at -Inf should panic")
			}
		}()
		q.At(math.Inf(-1), func() {})
	})
}

func TestAtCall(t *testing.T) {
	var q Queue
	var got []int
	add := func(arg any) { got = append(got, *arg.(*int)) }
	vals := []int{3, 1, 2}
	q.AtCall(3, add, &vals[0])
	q.AtCall(1, add, &vals[1])
	q.AfterCall(2, add, &vals[2])
	q.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("AtCall order = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("AtCall with nil callback should panic")
		}
	}()
	q.AtCall(4, nil, nil)
}

// TestScheduleStepZeroAlloc pins the point of the rewrite: once the heap
// slice has grown, an AtCall/Step cycle must not allocate. The old
// container/heap implementation boxed the event struct on both Push and
// Pop; the closure-taking At additionally allocated at most call sites.
func TestScheduleStepZeroAlloc(t *testing.T) {
	var q Queue
	var fired int
	count := func(any) { fired++ }
	// Warm up so the backing slice reaches capacity before measuring.
	for i := 0; i < 64; i++ {
		q.AtCall(float64(i), count, nil)
	}
	q.Run()
	base := q.Now()
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			q.AtCall(base+float64(i), count, nil)
		}
		for q.Step() {
		}
		base = q.Now()
	})
	if allocs != 0 {
		t.Fatalf("AtCall/Step cycle allocated %v times, want 0", allocs)
	}
	// At with a pre-built closure must not allocate either: the func value
	// is pointer-shaped, so storing it in the event's arg does not box.
	fn := func() { fired++ }
	allocs = testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			q.At(base+float64(i), fn)
		}
		for q.Step() {
		}
		base = q.Now()
	})
	if allocs != 0 {
		t.Fatalf("At/Step cycle with prebuilt closure allocated %v times, want 0", allocs)
	}
}

// oracleEvent / oracleHeap replicate the binary container/heap
// implementation the 4-ary queue replaced, as an ordering oracle.
type oracleEvent struct {
	time float64
	seq  uint64
	id   int
}

type oracleHeap []oracleEvent

func (h oracleHeap) Len() int { return len(h) }
func (h oracleHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h oracleHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *oracleHeap) Push(x any)   { *h = append(*h, x.(oracleEvent)) }
func (h *oracleHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// TestFourAryMatchesBinaryOracle drives the 4-ary queue and the binary
// container/heap oracle with identical duplicate-heavy schedules and
// requires the identical execution order — i.e. same-time FIFO and overall
// (time, seq) order are independent of heap arity, which is what makes the
// rewrite replay-compatible.
func TestFourAryMatchesBinaryOracle(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var q Queue
		var o oracleHeap
		var seq uint64
		var got, want []int
		record := func(arg any) { got = append(got, arg.(*oracleEvent).id) }
		n := 500
		events := make([]oracleEvent, 0, n)
		for i := 0; i < n; i++ {
			// A tiny time alphabet forces heavy ties, exercising FIFO.
			tt := float64(rng.Intn(8))
			seq++
			events = append(events, oracleEvent{time: tt, seq: seq, id: i})
			heap.Push(&o, events[i])
			q.AtCall(tt, record, &events[i])
		}
		for o.Len() > 0 {
			want = append(want, heap.Pop(&o).(oracleEvent).id)
		}
		q.Run()
		if len(got) != len(want) {
			t.Fatalf("seed %d: executed %d events, oracle has %d", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: event %d executed as %d, oracle says %d", seed, i, got[i], want[i])
			}
		}
	}
}

// Property: any random schedule executes in non-decreasing time order.
func TestQuickTimeMonotone(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var q Queue
		var times []float64
		want := make([]float64, 0, n)
		for i := 0; i < int(n); i++ {
			tt := rng.Float64() * 100
			want = append(want, tt)
			q.At(tt, func() { times = append(times, q.Now()) })
		}
		q.Run()
		sort.Float64s(want)
		if len(times) != len(want) {
			return false
		}
		for i := range times {
			if times[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
