package eventq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestOrdering(t *testing.T) {
	var q Queue
	var got []int
	q.At(3, func() { got = append(got, 3) })
	q.At(1, func() { got = append(got, 1) })
	q.At(2, func() { got = append(got, 2) })
	q.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("order = %v", got)
	}
	if q.Now() != 3 {
		t.Errorf("Now = %v, want 3", q.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	var q Queue
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		q.At(1, func() { got = append(got, i) })
	}
	q.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events out of order: %v", got)
		}
	}
}

func TestAfterAndNesting(t *testing.T) {
	var q Queue
	var got []float64
	q.At(1, func() {
		q.After(0.5, func() { got = append(got, q.Now()) })
	})
	q.Run()
	if len(got) != 1 || got[0] != 1.5 {
		t.Errorf("nested After = %v", got)
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	var q Queue
	q.At(5, func() {})
	q.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past should panic")
		}
	}()
	q.At(1, func() {})
}

func TestRunUntil(t *testing.T) {
	var q Queue
	fired := map[float64]bool{}
	for _, tt := range []float64{1, 2, 3, 4} {
		tt := tt
		q.At(tt, func() { fired[tt] = true })
	}
	q.RunUntil(2)
	if !fired[1] || !fired[2] || fired[3] {
		t.Errorf("RunUntil(2) fired %v", fired)
	}
	if q.Now() != 2 {
		t.Errorf("Now = %v, want 2", q.Now())
	}
	q.RunFor(1)
	if !fired[3] || fired[4] {
		t.Errorf("RunFor(1) fired %v", fired)
	}
}

func TestStepAndLen(t *testing.T) {
	var q Queue
	q.At(1, func() {})
	q.At(2, func() {})
	if q.Len() != 2 {
		t.Errorf("Len = %d", q.Len())
	}
	if !q.Step() || q.Len() != 1 || q.Steps() != 1 {
		t.Error("Step bookkeeping wrong")
	}
	q.Run()
	if q.Step() {
		t.Error("Step on empty queue should return false")
	}
}

// Property: any random schedule executes in non-decreasing time order.
func TestQuickTimeMonotone(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var q Queue
		var times []float64
		want := make([]float64, 0, n)
		for i := 0; i < int(n); i++ {
			tt := rng.Float64() * 100
			want = append(want, tt)
			q.At(tt, func() { times = append(times, q.Now()) })
		}
		q.Run()
		sort.Float64s(want)
		if len(times) != len(want) {
			return false
		}
		for i := range times {
			if times[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
