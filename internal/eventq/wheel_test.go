package eventq

import (
	"math/rand"
	"sort"
	"testing"
)

// TestCancelLenSteps is the regression test for the cancellation
// bookkeeping satellite: Cancel must decrement Len exactly once, never
// bump Steps, and a cancelled event must never fire. It exercises all
// three tiers a pending event can live in (ready heap, wheel bucket,
// overflow heap).
func TestCancelLenSteps(t *testing.T) {
	var q Queue
	fired := map[int]bool{}
	rec := func(arg any) { fired[arg.(int)] = true }

	// Three co-resident events per tier. Tick resolution is 1µs, so:
	// ready-tier events need the cursor advanced past them (schedule two,
	// fire one to drag the cursor), wheel events sit microseconds-to-
	// minutes out, overflow events sit > 2^32 µs ≈ 71.6 min out.
	hWheel := q.Schedule(0.001, rec, 1)
	hWheel2 := q.Schedule(0.002, rec, 2)
	hOver := q.Schedule(1e7, rec, 3)
	hNear := q.Schedule(3e-7, rec, 4) // sub-tick: lands in ready after first peek
	if q.Len() != 4 {
		t.Fatalf("Len = %d, want 4", q.Len())
	}

	// Peek drags the cursor to the first pending tick, moving hNear's node
	// into the ready tier without firing anything.
	if tt, ok := q.PeekTime(); !ok || tt != 3e-7 {
		t.Fatalf("PeekTime = %v,%v", tt, ok)
	}
	if q.Steps() != 0 {
		t.Fatalf("Steps after peek = %d, want 0", q.Steps())
	}

	for i, h := range []Handle{hNear, hWheel, hOver} {
		if !q.Cancel(h) {
			t.Fatalf("Cancel #%d returned false for a pending event", i)
		}
		if q.Cancel(h) {
			t.Fatalf("double Cancel #%d returned true", i)
		}
	}
	if q.Len() != 1 {
		t.Fatalf("Len after 3 cancels = %d, want 1", q.Len())
	}
	if q.Steps() != 0 {
		t.Fatalf("Steps after cancels = %d, want 0", q.Steps())
	}

	q.Run()
	if q.Len() != 0 || q.Steps() != 1 {
		t.Fatalf("after Run: Len=%d Steps=%d, want 0/1", q.Len(), q.Steps())
	}
	if fired[1] || fired[3] || fired[4] || !fired[2] {
		t.Fatalf("fired = %v, want only id 2", fired)
	}
	// The handle of a fired event is stale.
	if q.Cancel(hWheel2) {
		t.Fatal("Cancel of an already-fired event returned true")
	}
	// The zero Handle never cancels.
	if q.Cancel(Handle{}) {
		t.Fatal("Cancel of zero Handle returned true")
	}
}

// TestHandleStaleAfterReuse pins the ABA guard: once a node is recycled
// for a new event, the old Handle (same node pointer, older seq) must not
// cancel the new event.
func TestHandleStaleAfterReuse(t *testing.T) {
	var q Queue
	var fired int
	count := func(any) { fired++ }
	h1 := q.Schedule(1, count, nil)
	if !q.Cancel(h1) {
		t.Fatal("first Cancel failed")
	}
	// The freed node is recycled for the next event.
	h2 := q.Schedule(2, count, nil)
	if q.Cancel(h1) {
		t.Fatal("stale Handle cancelled a recycled node's new event")
	}
	q.Run()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if q.Cancel(h2) {
		t.Fatal("Cancel after fire returned true")
	}
}

// TestCascadeAcrossLevels schedules events spanning every wheel level and
// the overflow tier with heavy ties, and checks the execution order is the
// exact (time, seq) order — i.e. cascading from high levels down to the
// ready tier loses neither events nor ordering.
func TestCascadeAcrossLevels(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var q Queue
		type ev struct {
			time float64
			seq  int
		}
		var want []ev
		var got []ev
		// Scales chosen to land in level 0 (µs), 1-2 (ms-s), 3 (minutes),
		// and overflow (> 71.6 min = 4295 s).
		scales := []float64{1e-6, 1e-3, 1, 60, 1e4}
		for i := 0; i < 400; i++ {
			tt := float64(rng.Intn(16)) * scales[rng.Intn(len(scales))]
			e := ev{time: tt, seq: i}
			want = append(want, e)
			q.AtCall(tt, func(arg any) { got = append(got, arg.(ev)) }, e)
		}
		sort.SliceStable(want, func(i, j int) bool { return want[i].time < want[j].time })
		q.Run()
		if len(got) != len(want) {
			t.Fatalf("seed %d: fired %d of %d events", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: event %d = %+v, want %+v", seed, i, got[i], want[i])
			}
		}
		if q.Len() != 0 {
			t.Fatalf("seed %d: Len = %d after Run", seed, q.Len())
		}
	}
}

// TestWheelMatchesHeapWithCancels drives the wheel and the retired Heap
// baseline with an identical random schedule, cancelling a random subset
// on the wheel and simply skipping those ids on the heap side, and
// requires identical execution order of the survivors. Interleaves
// scheduling with stepping so the cursor is mid-wheel when new events
// arrive (the "push behind the cursor" path).
func TestWheelMatchesHeapWithCancels(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var q Queue
		var h Heap
		cancelled := map[int]bool{}
		var got, want []int
		var handles []Handle
		var ids []int
		id := 0
		schedule := func(n int) {
			for i := 0; i < n; i++ {
				tt := q.Now() + rng.Float64()*float64(rng.Intn(5000))*1e-3
				myID := id
				id++
				handles = append(handles, q.Schedule(tt, func(arg any) {
					got = append(got, arg.(int))
				}, myID))
				ids = append(ids, myID)
				h.AtCall(tt, func(arg any) {
					if !cancelled[arg.(int)] {
						want = append(want, arg.(int))
					}
				}, myID)
			}
		}
		schedule(100)
		for round := 0; round < 20; round++ {
			// Cancel a few random outstanding handles.
			for i := 0; i < 3 && len(handles) > 0; i++ {
				k := rng.Intn(len(handles))
				if q.Cancel(handles[k]) {
					cancelled[ids[k]] = true
				}
				handles = append(handles[:k], handles[k+1:]...)
				ids = append(ids[:k], ids[k+1:]...)
			}
			for i := 0; i < 10; i++ {
				q.Step()
				h.Step()
			}
			schedule(10)
		}
		q.Run()
		h.Run()
		if len(got) != len(want) {
			t.Fatalf("seed %d: wheel fired %d, heap fired %d", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: position %d: wheel %d, heap %d", seed, i, got[i], want[i])
			}
		}
	}
}

// TestCancelZeroAlloc: the schedule/cancel cycle must not allocate in
// steady state — cancelled nodes return to the free list.
func TestCancelZeroAlloc(t *testing.T) {
	var q Queue
	count := func(any) {}
	// Warm the free list and tier slices.
	hs := make([]Handle, 64)
	for i := range hs {
		hs[i] = q.Schedule(float64(i+1), count, nil)
	}
	for _, h := range hs {
		q.Cancel(h)
	}
	base := 100.0
	allocs := testing.AllocsPerRun(100, func() {
		for i := range hs {
			hs[i] = q.Schedule(base+float64(i), count, nil)
		}
		for _, h := range hs {
			if !q.Cancel(h) {
				t.Fatal("cancel failed")
			}
		}
		base += 100
	})
	if allocs != 0 {
		t.Fatalf("Schedule/Cancel cycle allocated %v times, want 0", allocs)
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after cancelling everything", q.Len())
	}
}

// TestRunBefore pins the half-open window semantics used by the parallel
// topology runner: events strictly before the horizon run, events at the
// horizon wait, and the clock lands exactly on the horizon.
func TestRunBefore(t *testing.T) {
	var q Queue
	fired := map[float64]bool{}
	for _, tt := range []float64{1, 2, 3} {
		tt := tt
		q.At(tt, func() { fired[tt] = true })
	}
	q.RunBefore(2)
	if !fired[1] || fired[2] {
		t.Fatalf("RunBefore(2) fired %v", fired)
	}
	if q.Now() != 2 {
		t.Fatalf("Now = %v, want 2", q.Now())
	}
	// Scheduling exactly at the horizon from the next window is legal.
	q.At(2, func() { fired[2.5] = true })
	q.RunBefore(4)
	if !fired[2] || !fired[2.5] || !fired[3] {
		t.Fatalf("RunBefore(4) fired %v", fired)
	}
	if q.Now() != 4 {
		t.Fatalf("Now = %v, want 4", q.Now())
	}
}

// TestPeekThenEarlierPush pins the cursor-runs-ahead subtlety: peeking an
// empty-ish queue advances the wheel cursor; a later push with an earlier
// (but still future) time must fire first regardless.
func TestPeekThenEarlierPush(t *testing.T) {
	var q Queue
	var got []int
	rec := func(arg any) { got = append(got, arg.(int)) }
	q.AtCall(10, rec, 1)
	if tt, ok := q.PeekTime(); !ok || tt != 10 {
		t.Fatalf("PeekTime = %v,%v", tt, ok)
	}
	// Cursor now sits at tick(10); these pushes land at or behind it.
	q.AtCall(1, rec, 2)
	q.AtCall(5, rec, 3)
	q.AtCall(10, rec, 4)
	q.Run()
	wantOrder := []int{2, 3, 1, 4}
	if len(got) != 4 {
		t.Fatalf("fired %v", got)
	}
	for i := range got {
		if got[i] != wantOrder[i] {
			t.Fatalf("order = %v, want %v", got, wantOrder)
		}
	}
}

// TestSetResolution covers the coarse/fine resolution knob and its misuse
// guards.
func TestSetResolution(t *testing.T) {
	var q Queue
	q.SetResolution(1e-3)
	var got []int
	rec := func(arg any) { got = append(got, arg.(int)) }
	// Sub-tick spacing at 1ms resolution: ordering must still be exact.
	q.AtCall(1.0004, rec, 2)
	q.AtCall(1.0001, rec, 1)
	q.AtCall(2, rec, 3)
	q.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("SetResolution after use should panic")
			}
		}()
		q.SetResolution(1e-6)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("SetResolution(0) should panic")
			}
		}()
		var q2 Queue
		q2.SetResolution(0)
	}()
}
