package eventq

import (
	"fmt"
	"math"
)

// Heap is the retired typed 4-ary heap event queue the timing wheel
// replaced. It is kept (a) as the differential baseline for
// BenchmarkEventWheel — the O(log pending) cost the wheel removes — and
// (b) as an ordering oracle alongside the naive model in FuzzEventQueue.
// It mirrors the Queue API minus cancellation; the zero value is ready to
// use.
type Heap struct {
	h     []heapEvent
	now   float64
	seq   uint64
	steps uint64
}

type heapEvent struct {
	time float64
	seq  uint64
	fn   func(any)
	arg  any
}

func (a heapEvent) before(b heapEvent) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

// Now returns the current simulated time in seconds.
func (q *Heap) Now() float64 { return q.now }

// Len returns the number of pending events.
func (q *Heap) Len() int { return len(q.h) }

// Steps returns the number of events executed so far.
func (q *Heap) Steps() uint64 { return q.steps }

// At schedules fn to run at absolute time t.
func (q *Heap) At(t float64, fn func()) { q.push(t, runNullary, fn) }

// AtCall schedules fn(arg) to run at absolute time t (see Queue.AtCall).
func (q *Heap) AtCall(t float64, fn func(any), arg any) {
	if fn == nil {
		panic("eventq: AtCall requires a callback")
	}
	q.push(t, fn, arg)
}

// After schedules fn to run d seconds from now.
func (q *Heap) After(d float64, fn func()) { q.At(q.now+d, fn) }

// AfterCall schedules fn(arg) to run d seconds from now.
func (q *Heap) AfterCall(d float64, fn func(any), arg any) { q.AtCall(q.now+d, fn, arg) }

func (q *Heap) push(t float64, fn func(any), arg any) {
	if t < q.now {
		panic(fmt.Sprintf("eventq: scheduling at %v before now %v", t, q.now))
	}
	if math.IsNaN(t) {
		panic("eventq: scheduling at NaN")
	}
	if math.IsInf(t, 1) {
		panic("eventq: scheduling at +Inf; an event at 'never' would wedge Run — treat server.Never as a stall instead of scheduling it")
	}
	q.seq++
	e := heapEvent{time: t, seq: q.seq, fn: fn, arg: arg}
	q.h = append(q.h, e)
	// Sift up through the 4-ary tree: parent of i is (i-1)/4.
	h := q.h
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !e.before(h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = e
}

// pop removes and returns the earliest event.
func (q *Heap) pop() heapEvent {
	h := q.h
	top := h[0]
	n := len(h) - 1
	e := h[n]
	h[n] = heapEvent{} // release the callback and arg references
	q.h = h[:n]
	if n == 0 {
		return top
	}
	// Sift down: the hole travels toward the leaves along the smallest of
	// up to four children (children of i are 4i+1 .. 4i+4).
	h = q.h
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		min := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if h[j].before(h[min]) {
				min = j
			}
		}
		if !h[min].before(e) {
			break
		}
		h[i] = h[min]
		i = min
	}
	h[i] = e
	return top
}

// Step executes the earliest pending event, advancing the clock to its time.
// It reports whether an event was executed.
func (q *Heap) Step() bool {
	if len(q.h) == 0 {
		return false
	}
	e := q.pop()
	q.now = e.time
	q.steps++
	e.fn(e.arg)
	return true
}

// Run executes events until the queue is empty.
func (q *Heap) Run() {
	for q.Step() {
	}
}

// RunUntil executes events with time <= t, then advances the clock to t.
func (q *Heap) RunUntil(t float64) {
	for len(q.h) > 0 && q.h[0].time <= t {
		q.Step()
	}
	if t > q.now {
		q.now = t
	}
}

// RunFor executes events for d seconds of simulated time from now.
func (q *Heap) RunFor(d float64) { q.RunUntil(q.now + d) }
