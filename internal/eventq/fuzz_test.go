package eventq

import (
	"math"
	"testing"
)

// fuzzModel is the naive differential model: a sorted slice ordered by
// (time, seq) with O(n) insertion — obviously correct, hopelessly slow,
// and sharing no code with the wheel.
type fuzzModel struct {
	evs []fuzzModelEvent
	now float64
	seq uint64
}

type fuzzModelEvent struct {
	time float64
	seq  uint64
	id   int
}

func (m *fuzzModel) schedule(t float64, id int) {
	m.seq++
	e := fuzzModelEvent{time: t, seq: m.seq, id: id}
	i := len(m.evs)
	for i > 0 {
		p := m.evs[i-1]
		if p.time < e.time || (p.time == e.time && p.seq < e.seq) {
			break
		}
		i--
	}
	m.evs = append(m.evs, fuzzModelEvent{})
	copy(m.evs[i+1:], m.evs[i:])
	m.evs[i] = e
}

func (m *fuzzModel) cancel(id int) bool {
	for i, e := range m.evs {
		if e.id == id {
			m.evs = append(m.evs[:i], m.evs[i+1:]...)
			return true
		}
	}
	return false
}

func (m *fuzzModel) step() (int, bool) {
	if len(m.evs) == 0 {
		return 0, false
	}
	e := m.evs[0]
	m.evs = m.evs[1:]
	m.now = e.time
	return e.id, true
}

// FuzzEventQueue drives the timing wheel and the naive sorted-slice model
// with the same op sequence decoded from the fuzz input — schedule at
// mixed scales (hitting every wheel level and the overflow tier), cancel
// by handle, single steps, and RunUntil windows — and requires identical
// fire order, clock, and pending counts throughout.
func FuzzEventQueue(f *testing.F) {
	f.Add([]byte{0x00, 0x10, 0x01, 0x02, 0x02, 0x00, 0x22, 0x03})
	f.Add([]byte{0x40, 0xff, 0xff, 0x80, 0x01, 0xc1, 0x05, 0x02, 0x02})
	f.Add([]byte("\x00\x01\x00\x01\x01\x00\x02\x03\x00\xfe\x03\x02"))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Cap the op count: the sorted-slice model is O(n) per op by
		// design, and a megabyte input must not wedge the fuzz-smoke CI.
		if len(data) > 4096 {
			data = data[:4096]
		}
		var q Queue
		var m fuzzModel
		var fired, want []int
		rec := func(arg any) { fired = append(fired, arg.(int)) }

		// Outstanding handles, indexed in creation order. The model tracks
		// pending ids, so Cancel's return value is checked too.
		var handles []Handle
		var ids []int
		nextID := 0

		// Time scales per 2-bit selector: level 0 (µs), mid wheel (ms),
		// top of wheel (minutes), and overflow (> 2^32 µs).
		scales := [4]float64{1e-6, 1e-3, 60, 5000}

		checked := 0
		check := func(what string) {
			if q.Len() != len(m.evs) {
				t.Fatalf("%s: Len = %d, model has %d pending", what, q.Len(), len(m.evs))
			}
			if len(fired) != len(want) {
				t.Fatalf("%s: wheel fired %d events, model fired %d", what, len(fired), len(want))
			}
			// Compare only events fired since the last check, keeping the
			// whole run linear in the fire count.
			for ; checked < len(fired); checked++ {
				if fired[checked] != want[checked] {
					t.Fatalf("%s: fire order diverges at %d: wheel %d, model %d",
						what, checked, fired[checked], want[checked])
				}
			}
		}

		for i := 0; i < len(data); i++ {
			op := data[i]
			switch op >> 6 {
			case 0, 1: // schedule; low bits + next byte build the delay
				var lo byte
				if i+1 < len(data) {
					i++
					lo = data[i]
				}
				mag := float64(int(op&0x0f)<<8 | int(lo))
				d := mag * scales[(op>>4)&3]
				tt := q.Now() + d
				if math.IsInf(tt, 1) {
					continue
				}
				handles = append(handles, q.Schedule(tt, rec, nextID))
				ids = append(ids, nextID)
				m.schedule(tt, nextID)
				nextID++
			case 2: // cancel the (op mod outstanding)-th handle
				if len(handles) == 0 {
					continue
				}
				k := int(op&0x3f) % len(handles)
				gotOK := q.Cancel(handles[k])
				wantOK := m.cancel(ids[k])
				if gotOK != wantOK {
					t.Fatalf("Cancel(id %d) = %v, model says %v", ids[k], gotOK, wantOK)
				}
				handles = append(handles[:k], handles[k+1:]...)
				ids = append(ids[:k], ids[k+1:]...)
			case 3:
				if op&1 == 0 { // single step
					got := q.Step()
					id, stepped := m.step()
					if got != stepped {
						t.Fatalf("Step = %v, model says %v", got, stepped)
					}
					if stepped {
						want = append(want, id)
						if q.Now() != m.now {
							t.Fatalf("Now = %v, model says %v", q.Now(), m.now)
						}
					}
				} else { // advance a window
					horizon := q.Now() + float64(op&0x3e)*0.25
					q.RunUntil(horizon)
					for len(m.evs) > 0 && m.evs[0].time <= horizon {
						id, _ := m.step()
						want = append(want, id)
					}
					if horizon > m.now {
						m.now = horizon
					}
					if q.Now() != m.now {
						t.Fatalf("RunUntil(%v): Now = %v, model says %v", horizon, q.Now(), m.now)
					}
				}
			}
			check("mid-sequence")
		}

		// Drain both and compare the complete fire order.
		q.Run()
		for {
			id, ok := m.step()
			if !ok {
				break
			}
			want = append(want, id)
		}
		check("after drain")
	})
}
