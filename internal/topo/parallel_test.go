package topo_test

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/eventq"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/topo"
)

// shardScenario describes a deterministic 5-link, 3-flow Y topology with
// enough traffic to force queueing, cross-domain transit, and buffer-full
// drops:
//
//	s1 --in1--> sw1 --mid--> sw2 --out1--> d1
//	s2 --in2--> sw1          sw2 --out2--> d2
//
// f1: in1→mid→out1, f2: in2→mid→out2, f3 enters at sw1: mid→out1.
// Injection periods are incommensurate so no two cross-link arrivals ever
// tie (classic Build and BuildSharded may break exact cross-link ties
// differently; nothing else differs).
func shardLinks() []topo.LinkSpec {
	// Rates and delays are prime-flavored so no two frames' arrival
	// instants at a shared link ever coincide exactly (an exact float tie
	// would be broken by event seq, which legitimately differs between the
	// shared-queue and sharded executors).
	return []topo.LinkSpec{
		{Name: "in1", From: "s1", To: "sw1", Sched: core.New(), Proc: server.NewConstantRate(999983), PropDelay: 0.0020003},
		{Name: "in2", From: "s2", To: "sw1", Sched: core.New(), Proc: server.NewConstantRate(987503), PropDelay: 0.0029917},
		{Name: "mid", From: "sw1", To: "sw2", Sched: core.New(), Proc: server.NewConstantRate(399877), PropDelay: 0.0050021, Buffer: 3000},
		{Name: "out1", From: "sw2", To: "d1", Sched: core.New(), Proc: server.NewConstantRate(800311), PropDelay: 0.0010007},
		{Name: "out2", From: "sw2", To: "d2", Sched: core.New(), Proc: server.NewConstantRate(799997), PropDelay: 0.0040009},
	}
}

func shardFlows() []topo.FlowSpec {
	return []topo.FlowSpec{
		{Flow: 1, Weight: 2, Route: []string{"in1", "mid", "out1"}},
		{Flow: 2, Weight: 1, Route: []string{"in2", "mid", "out2"}},
		{Flow: 3, Weight: 1, Route: []string{"mid", "out1"}},
	}
}

// injectShard schedules the deterministic workload on a sharded build.
func injectShard(s *topo.Sharded) {
	inject(func(flow int) (*eventq.Queue, sim.Consumer) {
		return s.EntryQueue(flow), s.Entry(flow)
	})
}

// injectClassic schedules the identical workload on a classic build.
func injectClassic(n *topo.Network) {
	inject(func(flow int) (*eventq.Queue, sim.Consumer) {
		return n.Q, n.Entry(flow)
	})
}

func inject(entry func(flow int) (*eventq.Queue, sim.Consumer)) {
	// Periods and sizes per flow: mutually incommensurate, heavy enough to
	// backlog the 4e5 B/s mid link (f1+f2+f3 offer ~5.6e5 B/s).
	specs := []struct {
		flow   int
		phase  float64
		period float64
		bytes  float64
		n      int
	}{
		{1, 0.00071, 0.0130703, 2999, 150},
		{2, 0.000911, 0.0172909, 2411, 110},
		{3, 0.001013, 0.0191101, 1499, 100},
	}
	for _, sp := range specs {
		q, c := entry(sp.flow)
		for i := 0; i < sp.n; i++ {
			f := &sim.Frame{Flow: sp.flow, Bytes: sp.bytes, Seq: int64(i)}
			q.At(sp.phase+float64(i)*sp.period, func() { c.Deliver(f) })
		}
	}
}

// TestShardedParallelMatchesSerial is the digest pin for the parallel
// mode: the same scenario run on 1 worker and on many workers must produce
// bit-identical digests (per-link service-record traces, drop counters,
// sink totals). This is the in-scenario analogue of RunMatrix's
// shard-count invariance.
func TestShardedParallelMatchesSerial(t *testing.T) {
	run := func(workers int) (string, int64) {
		s, err := topo.BuildSharded(shardLinks(), shardFlows())
		if err != nil {
			t.Fatal(err)
		}
		injectShard(s)
		s.Run(workers)
		return s.Digest(), s.Windows()
	}
	serial, windows := run(1)
	if windows < 2 {
		t.Fatalf("scenario executed %d windows; want ≥ 2 so the barrier actually exchanges frames", windows)
	}
	if serial == "" {
		t.Fatal("empty digest")
	}
	for _, workers := range []int{2, 4, 8, 0} {
		parallel, _ := run(workers)
		if parallel != serial {
			t.Fatalf("digest(workers=%d) differs from serial:\n--- serial ---\n%s--- parallel ---\n%s",
				workers, serial, parallel)
		}
	}
	// The scenario must actually have exercised drops and multi-hop
	// delivery, or the digest equality is vacuous.
	s, err := topo.BuildSharded(shardLinks(), shardFlows())
	if err != nil {
		t.Fatal(err)
	}
	injectShard(s)
	s.Run(4)
	if s.Drops()[sim.DropBufferFull] == 0 {
		t.Error("expected buffer-full drops at the mid link")
	}
	for f := 1; f <= 3; f++ {
		if s.Sink(f).Count(f) == 0 {
			t.Errorf("flow %d delivered nothing", f)
		}
	}
}

// TestShardedMatchesClassicNetwork: the sharded executor reproduces the
// shared-queue Network run exactly — same per-flow deliveries and bytes,
// same per-link delivery and drop counters — on a scenario with no exact
// cross-link arrival ties.
func TestShardedMatchesClassicNetwork(t *testing.T) {
	q := &eventq.Queue{}
	n, err := topo.Build(q, shardLinks(), shardFlows())
	if err != nil {
		t.Fatal(err)
	}
	injectClassic(n)
	q.Run()

	s, err := topo.BuildSharded(shardLinks(), shardFlows())
	if err != nil {
		t.Fatal(err)
	}
	injectShard(s)
	s.Run(4)

	for f := 1; f <= 3; f++ {
		cc, cb := n.Sink(f).Count(f), n.Sink(f).Bytes(f)
		sc, sb := s.Sink(f).Count(f), s.Sink(f).Bytes(f)
		if cc != sc || cb != sb {
			t.Errorf("flow %d: classic %d frames / %v B, sharded %d frames / %v B", f, cc, cb, sc, sb)
		}
		if n.NoRouteDrops(f) != s.NoRouteDrops(f) {
			t.Errorf("flow %d: no-route drops differ", f)
		}
	}
	for _, ls := range shardLinks() {
		cl, sl := n.Link(ls.Name), s.Link(ls.Name)
		if cl.Delivered() != sl.Delivered() {
			t.Errorf("link %s: delivered %d (classic) vs %d (sharded)", ls.Name, cl.Delivered(), sl.Delivered())
		}
		cd, sd := cl.DropsByCause(), sl.DropsByCause()
		for c, v := range cd {
			if sd[c] != v {
				t.Errorf("link %s: drops[%s] %d (classic) vs %d (sharded)", ls.Name, c, v, sd[c])
			}
		}
		if cl.QueuedFrames() != 0 || sl.QueuedFrames() != 0 {
			t.Errorf("link %s: residual queue (classic %d, sharded %d)", ls.Name, cl.QueuedFrames(), sl.QueuedFrames())
		}
	}
}

// TestShardedValidation covers the build-time constraints specific to
// parallel execution.
func TestShardedValidation(t *testing.T) {
	mk := func() []topo.LinkSpec {
		return []topo.LinkSpec{
			{Name: "a", From: "x", To: "y", Sched: core.New(), Proc: server.NewConstantRate(1e6), PropDelay: 0.001},
			{Name: "b", From: "y", To: "z", Sched: core.New(), Proc: server.NewConstantRate(1e6), PropDelay: 0.001},
		}
	}
	flows := []topo.FlowSpec{{Flow: 1, Weight: 1, Route: []string{"a", "b"}}}

	// Zero propagation on a cross-domain link: no safe horizon.
	links := mk()
	links[0].PropDelay = 0
	if _, err := topo.BuildSharded(links, flows); err == nil {
		t.Error("zero-PropDelay cross link accepted")
	}
	// A purely-egress link may have zero propagation delay.
	links = mk()
	links[1].PropDelay = 0
	if _, err := topo.BuildSharded(links, flows); err != nil {
		t.Errorf("zero-PropDelay egress link rejected: %v", err)
	}
	// Custom sinks cannot cross the worker boundary.
	if _, err := topo.BuildSharded(mk(), []topo.FlowSpec{
		{Flow: 1, Weight: 1, Route: []string{"a", "b"}, Sink: sim.ConsumerFunc(func(*sim.Frame) {})},
	}); err == nil {
		t.Error("custom sink accepted in sharded mode")
	}
	// Classic validation still applies.
	if _, err := topo.BuildSharded(mk(), []topo.FlowSpec{
		{Flow: 1, Weight: 1, Route: []string{"a", "nope"}},
	}); err == nil {
		t.Error("unknown link accepted")
	}
	if _, err := topo.BuildSharded(mk(), []topo.FlowSpec{
		{Flow: 1, Weight: 1, Route: []string{"b", "a"}},
	}); err == nil {
		t.Error("non-contiguous route accepted")
	}
}

// TestShardedSingleLinkInfiniteLookahead: with no cross-domain edges the
// lookahead is infinite and the whole scenario executes as one window.
func TestShardedSingleLinkInfiniteLookahead(t *testing.T) {
	s, err := topo.BuildSharded(
		[]topo.LinkSpec{{Name: "only", From: "a", To: "b", Sched: core.New(), Proc: server.NewConstantRate(1e5)}},
		[]topo.FlowSpec{{Flow: 1, Weight: 1, Route: []string{"only"}}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(s.Lookahead(), 1) {
		t.Fatalf("lookahead = %v, want +Inf", s.Lookahead())
	}
	q, c := s.EntryQueue(1), s.Entry(1)
	for i := 0; i < 10; i++ {
		f := &sim.Frame{Flow: 1, Bytes: 1000}
		q.At(float64(i)*0.001, func() { c.Deliver(f) })
	}
	s.Run(4)
	if s.Windows() != 1 {
		t.Errorf("windows = %d, want 1", s.Windows())
	}
	if s.Sink(1).Count(1) != 10 {
		t.Errorf("delivered %d, want 10", s.Sink(1).Count(1))
	}
}
