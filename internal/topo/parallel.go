// Conservative-lookahead parallel execution of a multi-link topology.
//
// BuildSharded compiles the same declarative topology Build does, but
// gives every link its own event queue (a "domain"). Domains advance in
// lockstep windows of Δ = the minimum propagation delay of any
// cross-domain link: within a window [W, W+Δ) the domains are causally
// independent — a frame finishing transmission at endTx ∈ [W, W+Δ) cannot
// arrive at its next hop before endTx + PropDelay ≥ W + Δ — so the window
// can execute on GOMAXPROCS workers with no synchronization beyond the
// window barrier. Frames that cross domains are parked in per-domain
// outboxes and routed at the barrier, single-threaded, in deterministic
// order (domains sorted by link name, emission order within a domain), so
// Run(n) is bit-for-bit identical to Run(1) for every n — the same
// determinism contract conformance.RunMatrix makes for seed sharding, here
// applied inside a single scenario.
package topo

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/eventq"
	"repro/internal/sim"
)

// ErrNoLookahead rejects a parallel topology whose cross-domain links have
// no propagation delay: the safe horizon would be zero and domains could
// never advance independently. Give inter-switch links a physical
// PropDelay (even 1µs of wire suffices).
var ErrNoLookahead = errors.New("topo: parallel execution needs PropDelay > 0 on every link that feeds another link")

// ErrCustomSink rejects FlowSpec.Sink in sharded mode: a caller-supplied
// consumer would be invoked from whichever worker owns the egress domain,
// silently racing with the caller's other state. Use the per-flow
// auto-sinks (Sharded.Sink) instead.
var ErrCustomSink = errors.New("topo: sharded topologies use auto-sinks; FlowSpec.Sink must be nil")

// pmsg is one frame in transit between domains (routed at the window
// barrier) or to a local sink (scheduled on the domain's own queue at the
// post-propagation arrival time).
type pmsg struct {
	f    *sim.Frame
	at   float64
	dest *domain   // cross-domain next hop (nil for sink deliveries)
	sink *sim.Sink // local egress (nil for cross-domain hops)
}

// domain is one link compiled into its own event-queue shard.
type domain struct {
	name string
	q    *eventq.Queue
	link *sim.Link
	mon  *sim.Monitor
	spec LinkSpec

	next        map[int]*domain   // flow → next-hop domain
	sinkFlow    map[int]*sim.Sink // flow → egress sink (terminates here)
	outbox      []*pmsg           // cross-domain frames produced this window
	noRouteFlow map[int]int64
}

// Sharded is a compiled topology whose links run on independent event
// queues under conservative-lookahead windowing. Unlike Network, the flow
// set is fixed at build time: mid-run AddFlow/RemoveFlow would have to be
// choreographed across domain clocks, which is exactly the coordination
// the windowing exists to avoid.
type Sharded struct {
	domains   []*domain // sorted by link name: the deterministic barrier order
	byName    map[string]*domain
	flows     map[int]FlowSpec
	entry     map[int]*domain
	sinks     map[int]*sim.Sink
	lookahead float64
	windows   int64
}

// BuildSharded compiles the topology for parallel execution. It applies
// the same validation as Build (unique link names, contiguous routes,
// unique flow ids) plus the sharding constraints: every link that feeds
// another link must have PropDelay > 0 (the lookahead), and flows must use
// auto-sinks.
func BuildSharded(links []LinkSpec, flows []FlowSpec) (*Sharded, error) {
	s := &Sharded{
		byName: make(map[string]*domain),
		flows:  make(map[int]FlowSpec),
		entry:  make(map[int]*domain),
		sinks:  make(map[int]*sim.Sink),
	}
	for _, ls := range links {
		if _, dup := s.byName[ls.Name]; dup {
			return nil, fmt.Errorf("%w: %q", ErrDuplicateLink, ls.Name)
		}
		d := &domain{
			name:        ls.Name,
			q:           &eventq.Queue{},
			spec:        ls,
			next:        make(map[int]*domain),
			sinkFlow:    make(map[int]*sim.Sink),
			noRouteFlow: make(map[int]int64),
		}
		out := sim.ConsumerFunc(func(f *sim.Frame) {
			// The link transmits with PropDelay 0 (below); propagation is
			// applied here so cross-domain arrivals land at endTx + prop ≥
			// window start + lookahead, which is what makes the window safe.
			at := d.q.Now() + d.spec.PropDelay
			if nx, ok := d.next[f.Flow]; ok {
				d.outbox = append(d.outbox, &pmsg{f: f, at: at, dest: nx})
				return
			}
			if sk, ok := d.sinkFlow[f.Flow]; ok {
				if at > d.q.Now() {
					d.q.AtCall(at, shardDeliver, &pmsg{f: f, sink: sk})
				} else {
					sk.Deliver(f)
				}
				return
			}
			d.noRouteFlow[f.Flow]++
		})
		link := sim.NewLink(d.q, ls.Name, ls.Sched, ls.Proc, out)
		link.PropDelay = 0 // propagation handled at the domain boundary
		link.BufferBytes = ls.Buffer
		d.link = link
		d.mon = sim.MonitorAll(link)
		s.byName[ls.Name] = d
		s.domains = append(s.domains, d)
	}
	sort.Slice(s.domains, func(i, j int) bool { return s.domains[i].name < s.domains[j].name })

	for _, fs := range flows {
		if err := s.addFlow(fs); err != nil {
			return nil, err
		}
	}

	// Lookahead: the minimum propagation delay over links that feed
	// another link. Purely-egress links don't constrain the horizon.
	s.lookahead = math.Inf(1)
	for _, d := range s.domains {
		if len(d.next) == 0 {
			continue
		}
		if !(d.spec.PropDelay > 0) {
			return nil, fmt.Errorf("%w: %q", ErrNoLookahead, d.name)
		}
		if d.spec.PropDelay < s.lookahead {
			s.lookahead = d.spec.PropDelay
		}
	}
	return s, nil
}

func (s *Sharded) addFlow(fs FlowSpec) error {
	if _, dup := s.flows[fs.Flow]; dup {
		return fmt.Errorf("%w: %d", ErrDuplicateFlow, fs.Flow)
	}
	if len(fs.Route) == 0 {
		return fmt.Errorf("topo: flow %d has an empty route", fs.Flow)
	}
	if fs.Sink != nil {
		return fmt.Errorf("%w: flow %d", ErrCustomSink, fs.Flow)
	}
	for i, name := range fs.Route {
		d, ok := s.byName[name]
		if !ok {
			return fmt.Errorf("%w: flow %d hop %q", ErrUnknownLink, fs.Flow, name)
		}
		if i > 0 {
			prev := s.byName[fs.Route[i-1]].spec
			if prev.To != d.spec.From {
				return fmt.Errorf("%w: flow %d: %q ends at %q but %q starts at %q",
					ErrBadRoute, fs.Flow, prev.Name, prev.To, d.spec.Name, d.spec.From)
			}
		}
		if err := d.link.Scheduler().AddFlow(fs.Flow, fs.Weight); err != nil {
			return fmt.Errorf("topo: flow %d on %q: %w", fs.Flow, name, err)
		}
	}
	for i, name := range fs.Route {
		d := s.byName[name]
		if i == len(fs.Route)-1 {
			sk := sim.NewSink(d.q)
			d.sinkFlow[fs.Flow] = sk
			s.sinks[fs.Flow] = sk
		} else {
			d.next[fs.Flow] = s.byName[fs.Route[i+1]]
		}
	}
	s.entry[fs.Flow] = s.byName[fs.Route[0]]
	s.flows[fs.Flow] = fs
	return nil
}

// shardDeliver fires a routed pmsg: a cross-domain arrival at the next
// hop's link, or a post-propagation handoff to a local sink.
func shardDeliver(arg any) {
	m := arg.(*pmsg)
	if m.sink != nil {
		m.sink.Deliver(m.f)
		return
	}
	m.dest.link.Deliver(m.f)
}

// Entry returns the consumer a source should feed for the given flow (the
// first link of its route).
func (s *Sharded) Entry(flow int) sim.Consumer {
	d, ok := s.entry[flow]
	if !ok {
		panic(fmt.Sprintf("topo: unknown flow %d", flow))
	}
	return d.link
}

// EntryQueue returns the event queue of a flow's entry domain — the queue
// its traffic source must schedule on.
func (s *Sharded) EntryQueue(flow int) *eventq.Queue {
	d, ok := s.entry[flow]
	if !ok {
		panic(fmt.Sprintf("topo: unknown flow %d", flow))
	}
	return d.q
}

// Queue returns the named link's event queue (nil if unknown).
func (s *Sharded) Queue(name string) *eventq.Queue {
	if d := s.byName[name]; d != nil {
		return d.q
	}
	return nil
}

// Link returns the named link (nil if unknown).
func (s *Sharded) Link(name string) *sim.Link {
	if d := s.byName[name]; d != nil {
		return d.link
	}
	return nil
}

// Monitor returns the named link's monitor (nil if unknown).
func (s *Sharded) Monitor(name string) *sim.Monitor {
	if d := s.byName[name]; d != nil {
		return d.mon
	}
	return nil
}

// Sink returns the auto-created sink of a flow.
func (s *Sharded) Sink(flow int) *sim.Sink { return s.sinks[flow] }

// Lookahead returns the safe horizon Δ (infinite when no link feeds
// another: the whole scenario is then one window).
func (s *Sharded) Lookahead() float64 { return s.lookahead }

// Windows returns the number of lockstep windows the last Run executed.
func (s *Sharded) Windows() int64 { return s.windows }

// NoRouteDrops returns the frames of flow dropped for lack of a next hop,
// across all domains.
func (s *Sharded) NoRouteDrops(flow int) int64 {
	var total int64
	for _, d := range s.domains {
		total += d.noRouteFlow[flow]
	}
	return total
}

// Drops aggregates every drop in the network by cause.
func (s *Sharded) Drops() map[sim.DropCause]int64 {
	out := make(map[sim.DropCause]int64)
	var noRoute int64
	for _, d := range s.domains {
		for c, v := range d.link.DropsByCause() {
			out[c] += v
		}
		for _, v := range d.noRouteFlow {
			noRoute += v
		}
	}
	if noRoute > 0 {
		out[DropNoRoute] = noRoute
	}
	return out
}

// Run executes the scenario to completion on the given number of workers
// (≤ 0 means GOMAXPROCS). Within each window the workers steal whole
// domains off an atomic counter, exactly like conformance.RunMatrix steals
// seeds; the barrier then routes the outboxes single-threaded in sorted
// domain order. The result — every counter, monitor record, sink total,
// and the Digest — is bit-for-bit independent of workers.
func (s *Sharded) Run(workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s.windows = 0
	for {
		// Barrier: route last window's cross-domain frames. Deterministic:
		// domains in sorted order, outbox in emission order, so the
		// destination queues' (time, seq) tie order never depends on
		// worker interleaving.
		for _, d := range s.domains {
			for i, m := range d.outbox {
				m.dest.q.AtCall(m.at, shardDeliver, m)
				d.outbox[i] = nil
			}
			d.outbox = d.outbox[:0]
		}
		// Next window: [earliest pending event, +Δ).
		tmin := math.Inf(1)
		for _, d := range s.domains {
			if t, ok := d.q.PeekTime(); ok && t < tmin {
				tmin = t
			}
		}
		if math.IsInf(tmin, 1) {
			return // no pending events anywhere and nothing routed
		}
		s.windows++
		s.runWindow(tmin+s.lookahead, workers)
	}
}

func (s *Sharded) runWindow(end float64, workers int) {
	n := len(s.domains)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for _, d := range s.domains {
			runDomain(d.q, end)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				runDomain(s.domains[i].q, end)
			}
		}()
	}
	wg.Wait()
}

func runDomain(q *eventq.Queue, end float64) {
	if math.IsInf(end, 1) {
		// Infinite lookahead (no cross-domain edges): drain completely
		// rather than dragging every clock to +Inf.
		q.Run()
		return
	}
	q.RunBefore(end)
}

// Digest summarizes the run deterministically: per link (sorted) the
// delivery/drop/queue counters and an FNV-64 hash over the monitor's full
// service-record trace, then per flow (sorted) the sink totals and
// no-route drops. Exact float formatting (strconv 'g', -1) makes the
// digest bit-sensitive: any reordering or numeric drift between a serial
// and a parallel run changes it.
func (s *Sharded) Digest() string {
	var b strings.Builder
	for _, d := range s.domains {
		h := fnv.New64a()
		for _, r := range d.mon.ServiceRecords() {
			fmt.Fprintf(h, "%d %s %s %s\n", r.Flow, fexact(r.Start), fexact(r.End), fexact(r.Bytes))
		}
		fmt.Fprintf(&b, "l %s delivered %d queued %d trace %016x", d.name,
			d.link.Delivered(), d.link.QueuedFrames(), h.Sum64())
		causes := d.link.DropsByCause()
		keys := make([]string, 0, len(causes))
		for c := range causes {
			keys = append(keys, string(c))
		}
		sort.Strings(keys)
		for _, c := range keys {
			fmt.Fprintf(&b, " x %s %d", c, causes[sim.DropCause(c)])
		}
		b.WriteByte('\n')
	}
	flowIDs := make([]int, 0, len(s.flows))
	for f := range s.flows {
		flowIDs = append(flowIDs, f)
	}
	sort.Ints(flowIDs)
	for _, f := range flowIDs {
		sk := s.sinks[f]
		fmt.Fprintf(&b, "f %d count %d bytes %s noroute %d\n",
			f, sk.Count(f), fexact(sk.Bytes(f)), s.NoRouteDrops(f))
	}
	return b.String()
}

func fexact(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
