package topo_test

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/eventq"
	"repro/internal/sched"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/topo"
)

func linkSpec(name, from, to string, rate float64) topo.LinkSpec {
	return topo.LinkSpec{
		Name: name, From: from, To: to,
		Sched: core.New(),
		Proc:  server.NewConstantRate(rate),
	}
}

func TestBuildAndRouteSingleHop(t *testing.T) {
	q := &eventq.Queue{}
	n, err := topo.Build(q,
		[]topo.LinkSpec{linkSpec("ab", "a", "b", 100)},
		[]topo.FlowSpec{{Flow: 1, Weight: 1, Route: []string{"ab"}}},
	)
	if err != nil {
		t.Fatal(err)
	}
	q.At(0, func() { n.Entry(1).Deliver(&sim.Frame{Flow: 1, Bytes: 100}) })
	q.Run()
	if n.Sink(1).Count(1) != 1 {
		t.Errorf("sink count = %d", n.Sink(1).Count(1))
	}
	if got := n.Monitor("ab").ServedBytes(1); got != 100 {
		t.Errorf("served = %v", got)
	}
}

func TestThreeHopChainTiming(t *testing.T) {
	q := &eventq.Queue{}
	var links []topo.LinkSpec
	names := []string{"ab", "bc", "cd"}
	nodes := []string{"a", "b", "c", "d"}
	for i, nm := range names {
		ls := linkSpec(nm, nodes[i], nodes[i+1], 100)
		ls.PropDelay = 0.1
		links = append(links, ls)
	}
	var arrived float64
	sink := sim.ConsumerFunc(func(f *sim.Frame) { arrived = q.Now() })
	n, err := topo.Build(q, links,
		[]topo.FlowSpec{{Flow: 1, Weight: 1, Route: names, Sink: sink}})
	if err != nil {
		t.Fatal(err)
	}
	q.At(0, func() { n.Entry(1).Deliver(&sim.Frame{Flow: 1, Bytes: 100}) })
	q.Run()
	// 3 × (1 s transmission + 0.1 s propagation).
	if math.Abs(arrived-3.3) > 1e-9 {
		t.Errorf("arrival = %v, want 3.3", arrived)
	}
}

func TestRoutesDiverge(t *testing.T) {
	q := &eventq.Queue{}
	n, err := topo.Build(q,
		[]topo.LinkSpec{
			linkSpec("ab", "a", "b", 1000),
			linkSpec("bc", "b", "c", 1000),
			linkSpec("bd", "b", "d", 1000),
		},
		[]topo.FlowSpec{
			{Flow: 1, Weight: 1, Route: []string{"ab", "bc"}},
			{Flow: 2, Weight: 1, Route: []string{"ab", "bd"}},
		})
	if err != nil {
		t.Fatal(err)
	}
	q.At(0, func() {
		n.Entry(1).Deliver(&sim.Frame{Flow: 1, Bytes: 100})
		n.Entry(2).Deliver(&sim.Frame{Flow: 2, Bytes: 100})
	})
	q.Run()
	if n.Sink(1).Count(1) != 1 || n.Sink(2).Count(2) != 1 {
		t.Error("flows did not reach their sinks")
	}
	if n.Monitor("bc").ServedBytes(2) != 0 || n.Monitor("bd").ServedBytes(1) != 0 {
		t.Error("flow leaked onto the wrong branch")
	}
	if n.Monitor("ab").ServedBytes(1) != 100 || n.Monitor("ab").ServedBytes(2) != 100 {
		t.Error("shared hop missing traffic")
	}
}

func TestBuildValidation(t *testing.T) {
	q := &eventq.Queue{}
	ab := linkSpec("ab", "a", "b", 1)
	cd := linkSpec("cd", "c", "d", 1)

	_, err := topo.Build(q, []topo.LinkSpec{ab, linkSpec("ab", "x", "y", 1)}, nil)
	if !errors.Is(err, topo.ErrDuplicateLink) {
		t.Errorf("duplicate link: %v", err)
	}

	_, err = topo.Build(q, []topo.LinkSpec{ab},
		[]topo.FlowSpec{{Flow: 1, Weight: 1, Route: []string{"zz"}}})
	if !errors.Is(err, topo.ErrUnknownLink) {
		t.Errorf("unknown link: %v", err)
	}

	_, err = topo.Build(q, []topo.LinkSpec{ab, cd},
		[]topo.FlowSpec{{Flow: 1, Weight: 1, Route: []string{"ab", "cd"}}})
	if !errors.Is(err, topo.ErrBadRoute) {
		t.Errorf("discontiguous route: %v", err)
	}

	_, err = topo.Build(q, []topo.LinkSpec{ab},
		[]topo.FlowSpec{
			{Flow: 1, Weight: 1, Route: []string{"ab"}},
			{Flow: 1, Weight: 1, Route: []string{"ab"}},
		})
	if !errors.Is(err, topo.ErrDuplicateFlow) {
		t.Errorf("duplicate flow: %v", err)
	}

	_, err = topo.Build(q, []topo.LinkSpec{ab},
		[]topo.FlowSpec{{Flow: 1, Weight: 1, Route: nil}})
	if err == nil {
		t.Error("empty route accepted")
	}

	_, err = topo.Build(q, []topo.LinkSpec{ab},
		[]topo.FlowSpec{{Flow: 1, Weight: -1, Route: []string{"ab"}}})
	if err == nil {
		t.Error("bad weight accepted")
	}
}

func TestSharedBottleneckFairness(t *testing.T) {
	// Two flows share hop "ab" with weights 1:3, then split. The shared
	// SFQ hop divides its bandwidth by weight.
	q := &eventq.Queue{}
	shared := linkSpec("ab", "a", "b", 1000)
	n, err := topo.Build(q,
		[]topo.LinkSpec{shared, linkSpec("bc", "b", "c", 10000), linkSpec("bd", "b", "d", 10000)},
		[]topo.FlowSpec{
			{Flow: 1, Weight: 1, Route: []string{"ab", "bc"}},
			{Flow: 2, Weight: 3, Route: []string{"ab", "bd"}},
		})
	if err != nil {
		t.Fatal(err)
	}
	q.At(0, func() {
		for i := 0; i < 100; i++ {
			n.Entry(1).Deliver(&sim.Frame{Flow: 1, Bytes: 100})
			n.Entry(2).Deliver(&sim.Frame{Flow: 2, Bytes: 100})
		}
	})
	q.Run()
	mon := n.Monitor("ab")
	// Measure while both are backlogged: flow 2 (weight 3) drains first.
	end := mon.BackloggedIntervals(2)[0].End
	w1 := mon.ServiceCurve(1).Delta(0, end)
	w2 := mon.ServiceCurve(2).Delta(0, end)
	if r := w2 / w1; r < 2.5 || r > 3.5 {
		t.Errorf("shared-hop ratio = %v, want ≈ 3", r)
	}
}

func TestUnroutedFramePanics(t *testing.T) {
	q := &eventq.Queue{}
	n, err := topo.Build(q,
		[]topo.LinkSpec{{
			Name: "ab", From: "a", To: "b",
			Sched: func() sched.Interface { f := sched.NewFIFO(); _ = f.AddFlow(9, 1); return f }(),
			Proc:  server.NewConstantRate(100),
		}},
		nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("frame with no route should panic at the demux")
		}
	}()
	q.At(0, func() { n.Link("ab").Deliver(&sim.Frame{Flow: 9, Bytes: 10}) })
	q.Run()
}
