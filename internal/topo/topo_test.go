package topo_test

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/eventq"
	"repro/internal/sched"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/topo"
)

func linkSpec(name, from, to string, rate float64) topo.LinkSpec {
	return topo.LinkSpec{
		Name: name, From: from, To: to,
		Sched: core.New(),
		Proc:  server.NewConstantRate(rate),
	}
}

func TestBuildAndRouteSingleHop(t *testing.T) {
	q := &eventq.Queue{}
	n, err := topo.Build(q,
		[]topo.LinkSpec{linkSpec("ab", "a", "b", 100)},
		[]topo.FlowSpec{{Flow: 1, Weight: 1, Route: []string{"ab"}}},
	)
	if err != nil {
		t.Fatal(err)
	}
	q.At(0, func() { n.Entry(1).Deliver(&sim.Frame{Flow: 1, Bytes: 100}) })
	q.Run()
	if n.Sink(1).Count(1) != 1 {
		t.Errorf("sink count = %d", n.Sink(1).Count(1))
	}
	if got := n.Monitor("ab").ServedBytes(1); got != 100 {
		t.Errorf("served = %v", got)
	}
}

func TestThreeHopChainTiming(t *testing.T) {
	q := &eventq.Queue{}
	var links []topo.LinkSpec
	names := []string{"ab", "bc", "cd"}
	nodes := []string{"a", "b", "c", "d"}
	for i, nm := range names {
		ls := linkSpec(nm, nodes[i], nodes[i+1], 100)
		ls.PropDelay = 0.1
		links = append(links, ls)
	}
	var arrived float64
	sink := sim.ConsumerFunc(func(f *sim.Frame) { arrived = q.Now() })
	n, err := topo.Build(q, links,
		[]topo.FlowSpec{{Flow: 1, Weight: 1, Route: names, Sink: sink}})
	if err != nil {
		t.Fatal(err)
	}
	q.At(0, func() { n.Entry(1).Deliver(&sim.Frame{Flow: 1, Bytes: 100}) })
	q.Run()
	// 3 × (1 s transmission + 0.1 s propagation).
	if math.Abs(arrived-3.3) > 1e-9 {
		t.Errorf("arrival = %v, want 3.3", arrived)
	}
}

func TestRoutesDiverge(t *testing.T) {
	q := &eventq.Queue{}
	n, err := topo.Build(q,
		[]topo.LinkSpec{
			linkSpec("ab", "a", "b", 1000),
			linkSpec("bc", "b", "c", 1000),
			linkSpec("bd", "b", "d", 1000),
		},
		[]topo.FlowSpec{
			{Flow: 1, Weight: 1, Route: []string{"ab", "bc"}},
			{Flow: 2, Weight: 1, Route: []string{"ab", "bd"}},
		})
	if err != nil {
		t.Fatal(err)
	}
	q.At(0, func() {
		n.Entry(1).Deliver(&sim.Frame{Flow: 1, Bytes: 100})
		n.Entry(2).Deliver(&sim.Frame{Flow: 2, Bytes: 100})
	})
	q.Run()
	if n.Sink(1).Count(1) != 1 || n.Sink(2).Count(2) != 1 {
		t.Error("flows did not reach their sinks")
	}
	if n.Monitor("bc").ServedBytes(2) != 0 || n.Monitor("bd").ServedBytes(1) != 0 {
		t.Error("flow leaked onto the wrong branch")
	}
	if n.Monitor("ab").ServedBytes(1) != 100 || n.Monitor("ab").ServedBytes(2) != 100 {
		t.Error("shared hop missing traffic")
	}
}

func TestBuildValidation(t *testing.T) {
	q := &eventq.Queue{}
	ab := linkSpec("ab", "a", "b", 1)
	cd := linkSpec("cd", "c", "d", 1)

	_, err := topo.Build(q, []topo.LinkSpec{ab, linkSpec("ab", "x", "y", 1)}, nil)
	if !errors.Is(err, topo.ErrDuplicateLink) {
		t.Errorf("duplicate link: %v", err)
	}

	_, err = topo.Build(q, []topo.LinkSpec{ab},
		[]topo.FlowSpec{{Flow: 1, Weight: 1, Route: []string{"zz"}}})
	if !errors.Is(err, topo.ErrUnknownLink) {
		t.Errorf("unknown link: %v", err)
	}

	_, err = topo.Build(q, []topo.LinkSpec{ab, cd},
		[]topo.FlowSpec{{Flow: 1, Weight: 1, Route: []string{"ab", "cd"}}})
	if !errors.Is(err, topo.ErrBadRoute) {
		t.Errorf("discontiguous route: %v", err)
	}

	_, err = topo.Build(q, []topo.LinkSpec{ab},
		[]topo.FlowSpec{
			{Flow: 1, Weight: 1, Route: []string{"ab"}},
			{Flow: 1, Weight: 1, Route: []string{"ab"}},
		})
	if !errors.Is(err, topo.ErrDuplicateFlow) {
		t.Errorf("duplicate flow: %v", err)
	}

	_, err = topo.Build(q, []topo.LinkSpec{ab},
		[]topo.FlowSpec{{Flow: 1, Weight: 1, Route: nil}})
	if err == nil {
		t.Error("empty route accepted")
	}

	_, err = topo.Build(q, []topo.LinkSpec{ab},
		[]topo.FlowSpec{{Flow: 1, Weight: -1, Route: []string{"ab"}}})
	if err == nil {
		t.Error("bad weight accepted")
	}
}

func TestSharedBottleneckFairness(t *testing.T) {
	// Two flows share hop "ab" with weights 1:3, then split. The shared
	// SFQ hop divides its bandwidth by weight.
	q := &eventq.Queue{}
	shared := linkSpec("ab", "a", "b", 1000)
	n, err := topo.Build(q,
		[]topo.LinkSpec{shared, linkSpec("bc", "b", "c", 10000), linkSpec("bd", "b", "d", 10000)},
		[]topo.FlowSpec{
			{Flow: 1, Weight: 1, Route: []string{"ab", "bc"}},
			{Flow: 2, Weight: 3, Route: []string{"ab", "bd"}},
		})
	if err != nil {
		t.Fatal(err)
	}
	q.At(0, func() {
		for i := 0; i < 100; i++ {
			n.Entry(1).Deliver(&sim.Frame{Flow: 1, Bytes: 100})
			n.Entry(2).Deliver(&sim.Frame{Flow: 2, Bytes: 100})
		}
	})
	q.Run()
	mon := n.Monitor("ab")
	// Measure while both are backlogged: flow 2 (weight 3) drains first.
	end := mon.BackloggedIntervals(2)[0].End
	w1 := mon.ServiceCurve(1).Delta(0, end)
	w2 := mon.ServiceCurve(2).Delta(0, end)
	if r := w2 / w1; r < 2.5 || r > 3.5 {
		t.Errorf("shared-hop ratio = %v, want ≈ 3", r)
	}
}

func TestUnroutedFrameDropsCounted(t *testing.T) {
	// A frame that exits a link with no next hop wired for its flow must be
	// counted as a no-route drop, never a crash.
	q := &eventq.Queue{}
	n, err := topo.Build(q,
		[]topo.LinkSpec{{
			Name: "ab", From: "a", To: "b",
			Sched: func() sched.Interface { f := sched.NewFIFO(); _ = f.AddFlow(9, 1); return f }(),
			Proc:  server.NewConstantRate(100),
		}},
		nil)
	if err != nil {
		t.Fatal(err)
	}
	q.At(0, func() { n.Link("ab").Deliver(&sim.Frame{Flow: 9, Bytes: 10}) })
	q.Run()
	if got := n.NoRouteDrops(9); got != 1 {
		t.Errorf("NoRouteDrops(9) = %d, want 1", got)
	}
	if got := n.DropsByFlow(9); got != 1 {
		t.Errorf("DropsByFlow(9) = %d, want 1", got)
	}
	if got := n.Drops()[topo.DropNoRoute]; got != 1 {
		t.Errorf("Drops()[no-route] = %d, want 1", got)
	}
}

func TestRemoveFlowValidation(t *testing.T) {
	q := &eventq.Queue{}
	n, err := topo.Build(q,
		[]topo.LinkSpec{linkSpec("ab", "a", "b", 100)},
		[]topo.FlowSpec{{Flow: 1, Weight: 1, Route: []string{"ab"}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.RemoveFlow(7); !errors.Is(err, topo.ErrUnknownFlow) {
		t.Errorf("unknown flow: %v", err)
	}
	// Two frames: one in service, one queued. Removal must refuse while the
	// second is still queued.
	q.At(0, func() {
		n.Entry(1).Deliver(&sim.Frame{Flow: 1, Bytes: 100})
		n.Entry(1).Deliver(&sim.Frame{Flow: 1, Bytes: 100})
	})
	q.At(0.5, func() {
		if err := n.RemoveFlow(1); !errors.Is(err, topo.ErrFlowBusy) {
			t.Errorf("busy flow: %v", err)
		}
	})
	q.Run()
	if err := n.RemoveFlow(1); err != nil {
		t.Errorf("drained flow should remove cleanly: %v", err)
	}
	// Re-adding the same id after removal is not a duplicate.
	if err := n.AddFlow(topo.FlowSpec{Flow: 1, Weight: 1, Route: []string{"ab"}}); err != nil {
		t.Errorf("re-add after remove: %v", err)
	}
}

func TestRemovedFlowInFlightFrameCounted(t *testing.T) {
	// A frame in propagation between hops when its flow is removed arrives
	// at a demux with no next hop: counted as a no-route drop for that flow.
	q := &eventq.Queue{}
	ab := linkSpec("ab", "a", "b", 100)
	ab.PropDelay = 0.5
	n, err := topo.Build(q,
		[]topo.LinkSpec{ab, linkSpec("bc", "b", "c", 100)},
		[]topo.FlowSpec{{Flow: 2, Weight: 1, Route: []string{"ab", "bc"}}})
	if err != nil {
		t.Fatal(err)
	}
	q.At(0, func() { n.Entry(2).Deliver(&sim.Frame{Flow: 2, Bytes: 100}) })
	// Transmission on ab ends at t=1.0; the frame is in propagation until
	// t=1.5. Removing at t=1.2 succeeds (no queued bytes anywhere) and the
	// frame strands at ab's demux.
	q.At(1.2, func() {
		if err := n.RemoveFlow(2); err != nil {
			t.Fatalf("remove with frame in propagation: %v", err)
		}
	})
	q.Run()
	if got := n.NoRouteDrops(2); got != 1 {
		t.Errorf("NoRouteDrops(2) = %d, want 1", got)
	}
}

func TestFlowChurnUnderLoad(t *testing.T) {
	// Add and remove the same flow repeatedly on a live two-hop route while
	// a background flow keeps both links busy. The scheduler tag chains must
	// survive (the background flow loses nothing) and every churned-flow
	// frame must be accounted for: received, or dropped with a cause.
	q := &eventq.Queue{}
	n, err := topo.Build(q,
		[]topo.LinkSpec{linkSpec("ab", "a", "b", 1000), linkSpec("bc", "b", "c", 2000)},
		[]topo.FlowSpec{{Flow: 1, Weight: 1, Route: []string{"ab", "bc"}}})
	if err != nil {
		t.Fatal(err)
	}
	const bgFrames = 60
	q.At(0, func() {
		for i := 0; i < bgFrames; i++ {
			n.Entry(1).Deliver(&sim.Frame{Flow: 1, Bytes: 100, Created: 0})
		}
	})

	var received, sent int
	churnSink := sim.ConsumerFunc(func(f *sim.Frame) { received++ })
	spec := topo.FlowSpec{Flow: 2, Weight: 2, Route: []string{"ab", "bc"}, Sink: churnSink}
	cycles := 0
	const wantCycles = 8
	var addBurst func()
	addBurst = func() {
		if err := n.AddFlow(spec); err != nil {
			t.Errorf("cycle %d: AddFlow: %v", cycles, err)
			return
		}
		for i := 0; i < 5; i++ {
			n.Entry(2).Deliver(&sim.Frame{Flow: 2, Bytes: 100, Created: q.Now()})
			sent++
		}
		var tryRemove func()
		tryRemove = func() {
			err := n.RemoveFlow(2)
			if errors.Is(err, topo.ErrFlowBusy) {
				q.After(0.05, tryRemove)
				return
			}
			if err != nil {
				t.Errorf("cycle %d: RemoveFlow: %v", cycles, err)
				return
			}
			cycles++
			if cycles < wantCycles {
				q.After(0.01, addBurst)
			}
		}
		q.After(0.05, tryRemove)
	}
	q.At(0.001, addBurst)
	q.Run()

	if cycles != wantCycles {
		t.Fatalf("completed %d churn cycles, want %d", cycles, wantCycles)
	}
	// Background flow is untouched by the churn.
	if got := n.Sink(1).Count(1); got != bgFrames {
		t.Errorf("background flow delivered %d, want %d", got, bgFrames)
	}
	// Every churned frame is accounted: delivered or cause-tagged drop.
	if drops := int(n.DropsByFlow(2)); received+drops != sent {
		t.Errorf("churn accounting: received %d + drops %d != sent %d", received, drops, sent)
	}
	// The route still works after all the churn.
	if err := n.AddFlow(spec); err != nil {
		t.Fatalf("final re-add: %v", err)
	}
	q.At(q.Now()+0.01, func() { n.Entry(2).Deliver(&sim.Frame{Flow: 2, Bytes: 100, Created: q.Now()}) })
	before := received
	q.Run()
	if received != before+1 {
		t.Errorf("post-churn delivery: received %d, want %d", received, before+1)
	}
}
