// Package topo builds multi-node simulation topologies declaratively:
// named nodes connected by links (each with its own scheduler and
// capacity process), static per-flow routes, and automatic flow
// registration along each route. It removes the hand-wiring that
// multi-hop experiments otherwise need and guarantees that a frame
// entering a route traverses exactly the declared links, exiting into the
// flow's sink.
//
// Flows may also be added and removed while the simulation runs
// (AddFlow/RemoveFlow), which is how the fault-injection chaos tests
// exercise flow churn. A frame that reaches a switch after its flow's
// route was torn down is not a crash: it is dropped and counted under
// DropNoRoute, per flow.
package topo

import (
	"errors"
	"fmt"

	"repro/internal/eventq"
	"repro/internal/sched"
	"repro/internal/server"
	"repro/internal/sim"
)

// DropNoRoute tags frames that arrived at a switch with no next hop for
// their flow (the flow was removed while frames were still in flight, or
// was never routed). Previously a panic.
const DropNoRoute sim.DropCause = "no-route"

// LinkSpec declares one unidirectional link.
type LinkSpec struct {
	Name      string
	From, To  string
	Sched     sched.Interface
	Proc      server.Process
	PropDelay float64
	Buffer    float64 // shared buffer bytes; 0 = unbounded
}

// FlowSpec declares one flow: its id, weight (registered on every link of
// the route), the ordered list of link names it traverses, and the sink
// consumer that receives it at the end (nil = count-only sink).
type FlowSpec struct {
	Flow   int
	Weight float64
	Route  []string
	Sink   sim.Consumer
}

// demux routes frames leaving a link to the next hop of their flow.
type demux struct {
	n    *Network
	next map[int]sim.Consumer
}

// Network is a compiled topology.
type Network struct {
	Q       *eventq.Queue
	links   map[string]*sim.Link
	specs   map[string]LinkSpec
	demuxes map[string]*demux
	mons    map[string]*sim.Monitor
	entry   map[int]sim.Consumer
	sinks   map[int]*sim.Sink
	flows   map[int]FlowSpec

	noRouteFlow  map[int]int64
	noRouteTotal int64
}

// Errors returned by Build, AddFlow, and RemoveFlow.
var (
	ErrDuplicateLink = errors.New("topo: duplicate link name")
	ErrUnknownLink   = errors.New("topo: route references unknown link")
	ErrBadRoute      = errors.New("topo: route links are not contiguous")
	ErrDuplicateFlow = errors.New("topo: duplicate flow id")
	ErrUnknownFlow   = errors.New("topo: unknown flow")
	ErrFlowBusy      = errors.New("topo: flow has queued frames")
)

// Build compiles the topology. Routes must be contiguous (each link's To
// equals the next link's From).
func Build(q *eventq.Queue, links []LinkSpec, flows []FlowSpec) (*Network, error) {
	n := &Network{
		Q:           q,
		links:       make(map[string]*sim.Link),
		specs:       make(map[string]LinkSpec),
		demuxes:     make(map[string]*demux),
		mons:        make(map[string]*sim.Monitor),
		entry:       make(map[int]sim.Consumer),
		sinks:       make(map[int]*sim.Sink),
		flows:       make(map[int]FlowSpec),
		noRouteFlow: make(map[int]int64),
	}

	// Each link's downstream consumer routes per flow: the next link on
	// that flow's route, or its sink. Build links first with a demux
	// consumer, then fill the per-flow next tables.
	for _, ls := range links {
		if _, dup := n.links[ls.Name]; dup {
			return nil, fmt.Errorf("%w: %q", ErrDuplicateLink, ls.Name)
		}
		d := &demux{n: n, next: make(map[int]sim.Consumer)}
		n.demuxes[ls.Name] = d
		out := sim.ConsumerFunc(func(f *sim.Frame) {
			nx, ok := d.next[f.Flow]
			if !ok {
				// The flow's route is gone (removed mid-flight) or was
				// never wired: count the loss instead of crashing.
				n.noRouteFlow[f.Flow]++
				n.noRouteTotal++
				return
			}
			nx.Deliver(f)
		})
		link := sim.NewLink(q, ls.Name, ls.Sched, ls.Proc, out)
		link.PropDelay = ls.PropDelay
		link.BufferBytes = ls.Buffer
		n.links[ls.Name] = link
		n.specs[ls.Name] = ls
		n.mons[ls.Name] = sim.MonitorAll(link)
	}

	for _, fs := range flows {
		if err := n.AddFlow(fs); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// AddFlow registers a flow on a built (possibly running) network: it
// validates the route, registers the weight on every hop, and wires the
// demux chain ending at the flow's sink. Safe to call mid-simulation.
func (n *Network) AddFlow(fs FlowSpec) error {
	if _, dup := n.flows[fs.Flow]; dup {
		return fmt.Errorf("%w: %d", ErrDuplicateFlow, fs.Flow)
	}
	if len(fs.Route) == 0 {
		return fmt.Errorf("topo: flow %d has an empty route", fs.Flow)
	}
	// Validate contiguity and register the flow on every hop.
	for i, name := range fs.Route {
		link, ok := n.links[name]
		if !ok {
			return fmt.Errorf("%w: flow %d hop %q", ErrUnknownLink, fs.Flow, name)
		}
		if i > 0 {
			prev := n.specs[fs.Route[i-1]]
			cur := n.specs[name]
			if prev.To != cur.From {
				return fmt.Errorf("%w: flow %d: %q ends at %q but %q starts at %q",
					ErrBadRoute, fs.Flow, prev.Name, prev.To, cur.Name, cur.From)
			}
		}
		if err := link.Scheduler().AddFlow(fs.Flow, fs.Weight); err != nil {
			return fmt.Errorf("topo: flow %d on %q: %w", fs.Flow, name, err)
		}
	}
	// Wire the demux chain.
	sink := fs.Sink
	if sink == nil {
		s := sim.NewSink(n.Q)
		n.sinks[fs.Flow] = s
		sink = s
	}
	for i := len(fs.Route) - 1; i >= 0; i-- {
		d := n.demuxes[fs.Route[i]]
		if i == len(fs.Route)-1 {
			d.next[fs.Flow] = sink
		} else {
			d.next[fs.Flow] = n.links[fs.Route[i+1]]
		}
	}
	n.entry[fs.Flow] = n.links[fs.Route[0]]
	n.flows[fs.Flow] = fs
	return nil
}

// RemoveFlow tears a flow down mid-simulation: it unregisters the flow
// from every hop's scheduler, releases the links' per-flow bookkeeping,
// and unwires the demux chain. It refuses (ErrFlowBusy) while the flow has
// frames queued at any hop. Frames already in flight between hops when the
// route is torn down are counted as DropNoRoute at the demux, or as
// enqueue-rejected drops at a downstream link — never a crash.
func (n *Network) RemoveFlow(flow int) error {
	fs, ok := n.flows[flow]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownFlow, flow)
	}
	for _, name := range fs.Route {
		if n.links[name].Scheduler().QueuedBytes(flow) > 0 {
			return fmt.Errorf("%w: flow %d at %q", ErrFlowBusy, flow, name)
		}
	}
	for _, name := range fs.Route {
		if err := n.links[name].Scheduler().RemoveFlow(flow); err != nil {
			return fmt.Errorf("topo: flow %d on %q: %w", flow, name, err)
		}
		n.links[name].ForgetFlow(flow)
		delete(n.demuxes[name].next, flow)
	}
	delete(n.entry, flow)
	delete(n.sinks, flow)
	delete(n.flows, flow)
	return nil
}

// Entry returns the consumer a source should feed for the given flow (the
// first link of its route).
func (n *Network) Entry(flow int) sim.Consumer {
	e, ok := n.entry[flow]
	if !ok {
		panic(fmt.Sprintf("topo: unknown flow %d", flow))
	}
	return e
}

// Link returns the named link.
func (n *Network) Link(name string) *sim.Link { return n.links[name] }

// Monitor returns the named link's monitor.
func (n *Network) Monitor(name string) *sim.Monitor { return n.mons[name] }

// Sink returns the auto-created sink of a flow (nil if the flow supplied
// its own).
func (n *Network) Sink(flow int) *sim.Sink { return n.sinks[flow] }

// NoRouteDrops returns the frames of flow dropped for lack of a next hop.
func (n *Network) NoRouteDrops(flow int) int64 { return n.noRouteFlow[flow] }

// Drops returns every drop in the network, by cause, aggregated over the
// links plus the switch-level no-route drops.
func (n *Network) Drops() map[sim.DropCause]int64 {
	out := make(map[sim.DropCause]int64)
	for _, l := range n.links {
		for c, v := range l.DropsByCause() {
			out[c] += v
		}
	}
	if n.noRouteTotal > 0 {
		out[DropNoRoute] = n.noRouteTotal
	}
	return out
}

// DropsByFlow returns every drop charged to flow across the network:
// link-level drops on each hop plus no-route drops at the demuxes.
func (n *Network) DropsByFlow(flow int) int64 {
	total := n.noRouteFlow[flow]
	for _, l := range n.links {
		total += l.DropsByFlow(flow)
	}
	return total
}
