// Package topo builds multi-node simulation topologies declaratively:
// named nodes connected by links (each with its own scheduler and
// capacity process), static per-flow routes, and automatic flow
// registration along each route. It removes the hand-wiring that
// multi-hop experiments otherwise need and guarantees that a frame
// entering a route traverses exactly the declared links, exiting into the
// flow's sink.
package topo

import (
	"errors"
	"fmt"

	"repro/internal/eventq"
	"repro/internal/sched"
	"repro/internal/server"
	"repro/internal/sim"
)

// LinkSpec declares one unidirectional link.
type LinkSpec struct {
	Name      string
	From, To  string
	Sched     sched.Interface
	Proc      server.Process
	PropDelay float64
	Buffer    float64 // shared buffer bytes; 0 = unbounded
}

// FlowSpec declares one flow: its id, weight (registered on every link of
// the route), the ordered list of link names it traverses, and the sink
// consumer that receives it at the end (nil = count-only sink).
type FlowSpec struct {
	Flow   int
	Weight float64
	Route  []string
	Sink   sim.Consumer
}

// Network is a compiled topology.
type Network struct {
	Q     *eventq.Queue
	links map[string]*sim.Link
	mons  map[string]*sim.Monitor
	entry map[int]sim.Consumer
	sinks map[int]*sim.Sink
	flows map[int]FlowSpec
}

// Errors returned by Build.
var (
	ErrDuplicateLink = errors.New("topo: duplicate link name")
	ErrUnknownLink   = errors.New("topo: route references unknown link")
	ErrBadRoute      = errors.New("topo: route links are not contiguous")
	ErrDuplicateFlow = errors.New("topo: duplicate flow id")
)

// Build compiles the topology. Routes must be contiguous (each link's To
// equals the next link's From).
func Build(q *eventq.Queue, links []LinkSpec, flows []FlowSpec) (*Network, error) {
	n := &Network{
		Q:     q,
		links: make(map[string]*sim.Link),
		mons:  make(map[string]*sim.Monitor),
		entry: make(map[int]sim.Consumer),
		sinks: make(map[int]*sim.Sink),
		flows: make(map[int]FlowSpec),
	}

	// Each link's downstream consumer routes per flow: the next link on
	// that flow's route, or its sink. Build links first with a demux
	// consumer, then fill the per-flow next tables.
	type demux struct {
		next map[int]sim.Consumer
	}
	demuxes := make(map[string]*demux, len(links))
	for _, ls := range links {
		if _, dup := n.links[ls.Name]; dup {
			return nil, fmt.Errorf("%w: %q", ErrDuplicateLink, ls.Name)
		}
		d := &demux{next: make(map[int]sim.Consumer)}
		demuxes[ls.Name] = d
		out := sim.ConsumerFunc(func(f *sim.Frame) {
			nx, ok := d.next[f.Flow]
			if !ok {
				panic(fmt.Sprintf("topo: frame of flow %d has no next hop", f.Flow))
			}
			nx.Deliver(f)
		})
		link := sim.NewLink(q, ls.Name, ls.Sched, ls.Proc, out)
		link.PropDelay = ls.PropDelay
		link.BufferBytes = ls.Buffer
		n.links[ls.Name] = link
		n.mons[ls.Name] = sim.Attach(link)
	}
	byName := make(map[string]LinkSpec, len(links))
	for _, ls := range links {
		byName[ls.Name] = ls
	}

	for _, fs := range flows {
		if _, dup := n.flows[fs.Flow]; dup {
			return nil, fmt.Errorf("%w: %d", ErrDuplicateFlow, fs.Flow)
		}
		if len(fs.Route) == 0 {
			return nil, fmt.Errorf("topo: flow %d has an empty route", fs.Flow)
		}
		// Validate contiguity and register the flow on every hop.
		for i, name := range fs.Route {
			link, ok := n.links[name]
			if !ok {
				return nil, fmt.Errorf("%w: flow %d hop %q", ErrUnknownLink, fs.Flow, name)
			}
			if i > 0 {
				prev := byName[fs.Route[i-1]]
				cur := byName[name]
				if prev.To != cur.From {
					return nil, fmt.Errorf("%w: flow %d: %q ends at %q but %q starts at %q",
						ErrBadRoute, fs.Flow, prev.Name, prev.To, cur.Name, cur.From)
				}
			}
			if err := link.Scheduler().AddFlow(fs.Flow, fs.Weight); err != nil {
				return nil, fmt.Errorf("topo: flow %d on %q: %w", fs.Flow, name, err)
			}
		}
		// Wire the demux chain.
		sink := fs.Sink
		if sink == nil {
			s := sim.NewSink(q)
			n.sinks[fs.Flow] = s
			sink = s
		}
		for i := len(fs.Route) - 1; i >= 0; i-- {
			d := demuxes[fs.Route[i]]
			if i == len(fs.Route)-1 {
				d.next[fs.Flow] = sink
			} else {
				d.next[fs.Flow] = n.links[fs.Route[i+1]]
			}
		}
		n.entry[fs.Flow] = n.links[fs.Route[0]]
		n.flows[fs.Flow] = fs
	}
	return n, nil
}

// Entry returns the consumer a source should feed for the given flow (the
// first link of its route).
func (n *Network) Entry(flow int) sim.Consumer {
	e, ok := n.entry[flow]
	if !ok {
		panic(fmt.Sprintf("topo: unknown flow %d", flow))
	}
	return e
}

// Link returns the named link.
func (n *Network) Link(name string) *sim.Link { return n.links[name] }

// Monitor returns the named link's monitor.
func (n *Network) Monitor(name string) *sim.Monitor { return n.mons[name] }

// Sink returns the auto-created sink of a flow (nil if the flow supplied
// its own).
func (n *Network) Sink(flow int) *sim.Sink { return n.sinks[flow] }
