package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWelfordBasics(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 || w.Mean() != 5 {
		t.Errorf("n=%d mean=%v", w.N(), w.Mean())
	}
	if math.Abs(w.Std()-2.138089935299395) > 1e-12 {
		t.Errorf("std = %v", w.Std())
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("min/max = %v/%v", w.Min(), w.Max())
	}
	if w.String() == "" {
		t.Error("empty String")
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 {
		t.Error("empty accumulator should report zeros")
	}
	w.Add(42)
	if w.Mean() != 42 || w.Var() != 0 || w.Min() != 42 || w.Max() != 42 {
		t.Error("single-sample stats wrong")
	}
}

// Property: Welford matches the naive two-pass computation.
func TestQuickWelfordMatchesNaive(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		if n < 2 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, n)
		var w Welford
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
			w.Add(xs[i])
		}
		mean := 0.0
		for _, x := range xs {
			mean += x
		}
		mean /= float64(n)
		ss := 0.0
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		naiveVar := ss / float64(n-1)
		return math.Abs(w.Mean()-mean) < 1e-9 && math.Abs(w.Var()-naiveVar) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSamplePercentiles(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if s.N() != 100 || s.Mean() != 50.5 {
		t.Errorf("n=%d mean=%v", s.N(), s.Mean())
	}
	if got := s.Percentile(0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := s.Percentile(100); got != 100 {
		t.Errorf("p100 = %v", got)
	}
	if got := s.Percentile(50); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("p50 = %v", got)
	}
	if s.Max() != 100 {
		t.Errorf("max = %v", s.Max())
	}
	var empty Sample
	if empty.Percentile(50) != 0 || empty.Mean() != 0 || empty.Max() != 0 {
		t.Error("empty sample should report zeros")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1)
	h.Add(100)
	if h.N() != 12 || h.Underflow() != 1 || h.Overflow() != 1 {
		t.Errorf("n=%d under=%d over=%d", h.N(), h.Underflow(), h.Overflow())
	}
	for i := 0; i < h.NumBins(); i++ {
		if h.Bin(i) != 1 {
			t.Errorf("bin %d = %d, want 1", i, h.Bin(i))
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid histogram should panic")
		}
	}()
	NewHistogram(5, 5, 10)
}

func TestTimeSeries(t *testing.T) {
	var ts TimeSeries
	ts.Add(1, 10)
	ts.Add(2, 30)
	ts.Add(2, 35) // same-time update
	ts.Add(4, 70)
	if ts.N() != 4 {
		t.Errorf("N = %d", ts.N())
	}
	if got := ts.At(0.5); got != 0 {
		t.Errorf("At(0.5) = %v, want 0", got)
	}
	if got := ts.At(2); got != 35 {
		t.Errorf("At(2) = %v, want 35 (last same-time point)", got)
	}
	if got := ts.At(3); got != 35 {
		t.Errorf("At(3) = %v", got)
	}
	if got := ts.Delta(1, 4); got != 60 {
		t.Errorf("Delta = %v, want 60", got)
	}
	lt, lv := ts.Last()
	if lt != 4 || lv != 70 {
		t.Errorf("Last = (%v,%v)", lt, lv)
	}
	xs, vs := ts.Points()
	if len(xs) != 4 || len(vs) != 4 {
		t.Error("Points length")
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-order Add should panic")
		}
	}()
	ts.Add(3, 80)
}

func TestTimeSeriesEmpty(t *testing.T) {
	var ts TimeSeries
	if ts.At(5) != 0 {
		t.Error("empty At should be 0")
	}
	lt, lv := ts.Last()
	if lt != 0 || lv != 0 {
		t.Error("empty Last should be zeros")
	}
}
