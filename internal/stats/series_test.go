package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestEWMA(t *testing.T) {
	e := EWMA{Alpha: 0.5}
	if e.Value() != 0 {
		t.Error("initial value")
	}
	if got := e.Add(10); got != 10 {
		t.Errorf("first sample = %v", got)
	}
	if got := e.Add(20); got != 15 {
		t.Errorf("second = %v, want 15", got)
	}
	if got := e.Add(15); got != 15 {
		t.Errorf("third = %v, want 15", got)
	}
}

func TestEWMABadAlpha(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("alpha 0 accepted")
		}
	}()
	(&EWMA{}).Add(1)
}

func TestAutocorrelationPeriodicSignal(t *testing.T) {
	// Period-4 square wave: strong positive correlation at lag 4,
	// negative at lag 2.
	xs := make([]float64, 400)
	for i := range xs {
		if i%4 < 2 {
			xs[i] = 1
		} else {
			xs[i] = -1
		}
	}
	ac := Autocorrelation(xs, []int{0, 2, 4})
	if math.Abs(ac[0]-1) > 1e-9 {
		t.Errorf("lag 0 = %v, want 1", ac[0])
	}
	if ac[1] > -0.9 {
		t.Errorf("lag 2 = %v, want ≈ -1", ac[1])
	}
	if ac[2] < 0.9 {
		t.Errorf("lag 4 = %v, want ≈ 1", ac[2])
	}
}

func TestAutocorrelationWhiteNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	ac := Autocorrelation(xs, []int{1, 10, 50})
	for i, a := range ac {
		if math.Abs(a) > 0.06 {
			t.Errorf("white noise autocorrelation %d = %v, want ≈ 0", i, a)
		}
	}
}

func TestAutocorrelationEdgeCases(t *testing.T) {
	ac := Autocorrelation([]float64{1, 1, 1}, []int{0, 1, 5, -1})
	for i, a := range ac {
		if !math.IsNaN(a) {
			t.Errorf("constant series lag index %d = %v, want NaN", i, a)
		}
	}
	if got := Autocorrelation(nil, []int{0}); !math.IsNaN(got[0]) {
		t.Error("empty series should be NaN")
	}
}

func TestCoefficientOfVariation(t *testing.T) {
	if got := CoefficientOfVariation([]float64{5, 5, 5}); got != 0 {
		t.Errorf("constant CV = %v", got)
	}
	if got := CoefficientOfVariation(nil); got != 0 {
		t.Errorf("empty CV = %v", got)
	}
	cv := CoefficientOfVariation([]float64{1, 3})
	if math.Abs(cv-math.Sqrt2/2) > 1e-12 {
		t.Errorf("CV = %v, want %v", cv, math.Sqrt2/2)
	}
}
