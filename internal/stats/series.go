package stats

import "math"

// EWMA is an exponentially weighted moving average with smoothing factor
// alpha in (0, 1]: higher alpha weights recent samples more.
type EWMA struct {
	Alpha float64
	value float64
	init  bool
}

// Add incorporates x and returns the updated average.
func (e *EWMA) Add(x float64) float64 {
	if e.Alpha <= 0 || e.Alpha > 1 {
		panic("stats: EWMA alpha must be in (0, 1]")
	}
	if !e.init {
		e.value = x
		e.init = true
	} else {
		e.value = e.Alpha*x + (1-e.Alpha)*e.value
	}
	return e.value
}

// Value returns the current average (0 before any sample).
func (e *EWMA) Value() float64 { return e.value }

// Autocorrelation returns the sample autocorrelation of xs at the given
// lags. It returns NaN at a lag when the series is too short or has zero
// variance.
func Autocorrelation(xs []float64, lags []int) []float64 {
	n := len(xs)
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	if n > 0 {
		mean /= float64(n)
	}
	var variance float64
	for _, x := range xs {
		variance += (x - mean) * (x - mean)
	}
	out := make([]float64, len(lags))
	for i, lag := range lags {
		if lag < 0 || lag >= n || variance == 0 {
			out[i] = math.NaN()
			continue
		}
		cov := 0.0
		for j := 0; j+lag < n; j++ {
			cov += (xs[j] - mean) * (xs[j+lag] - mean)
		}
		out[i] = cov / variance
	}
	return out
}

// CoefficientOfVariation returns std/mean of xs (0 for an empty or
// zero-mean series).
func CoefficientOfVariation(xs []float64) float64 {
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	if w.Mean() == 0 {
		return 0
	}
	return w.Std() / w.Mean()
}
