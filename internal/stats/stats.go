// Package stats provides the small statistics toolkit used by the
// experiments: streaming mean/variance (Welford), min/max tracking,
// fixed-bin histograms, percentiles over retained samples, and
// time-series accumulation of cumulative counters.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Welford accumulates streaming mean and variance without retaining samples.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates x.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of samples.
func (w *Welford) N() int64 { return w.n }

// Mean returns the sample mean (0 if empty).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance (0 for fewer than two samples).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Min returns the minimum sample (0 if empty).
func (w *Welford) Min() float64 { return w.min }

// Max returns the maximum sample (0 if empty).
func (w *Welford) Max() float64 { return w.max }

// String summarizes the accumulator.
func (w *Welford) String() string {
	return fmt.Sprintf("n=%d mean=%.6g std=%.6g min=%.6g max=%.6g",
		w.n, w.Mean(), w.Std(), w.min, w.max)
}

// Sample retains all values to answer percentile queries exactly.
type Sample struct {
	xs     []float64
	sorted bool
}

// Add appends x.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// N returns the number of samples.
func (s *Sample) N() int { return len(s.xs) }

// Values returns the retained samples (in insertion order unless a
// percentile query has sorted them); the caller must not modify the
// returned slice.
func (s *Sample) Values() []float64 { return s.xs }

// Mean returns the sample mean.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Max returns the maximum sample (0 if empty).
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) using
// nearest-rank interpolation. It returns 0 for an empty sample.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
	if p <= 0 {
		return s.xs[0]
	}
	if p >= 100 {
		return s.xs[len(s.xs)-1]
	}
	rank := p / 100 * float64(len(s.xs)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.xs[lo]
	}
	frac := rank - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Histogram is a fixed-bin-width histogram over [Lo, Hi); samples outside
// the range are counted in the under/overflow bins.
type Histogram struct {
	Lo, Hi float64
	bins   []int64
	under  int64
	over   int64
	n      int64
}

// NewHistogram creates a histogram with nbins equal bins over [lo, hi).
func NewHistogram(lo, hi float64, nbins int) *Histogram {
	if nbins <= 0 || hi <= lo {
		panic("stats: invalid histogram parameters")
	}
	return &Histogram{Lo: lo, Hi: hi, bins: make([]int64, nbins)}
}

// Add incorporates x.
func (h *Histogram) Add(x float64) {
	h.n++
	switch {
	case x < h.Lo:
		h.under++
	case x >= h.Hi:
		h.over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.bins)))
		if i >= len(h.bins) { // guard against FP edge at Hi
			i = len(h.bins) - 1
		}
		h.bins[i]++
	}
}

// N returns total samples.
func (h *Histogram) N() int64 { return h.n }

// Bin returns the count in bin i.
func (h *Histogram) Bin(i int) int64 { return h.bins[i] }

// NumBins returns the number of bins.
func (h *Histogram) NumBins() int { return len(h.bins) }

// Underflow and Overflow return the out-of-range counts.
func (h *Histogram) Underflow() int64 { return h.under }

// Overflow returns the count of samples >= Hi.
func (h *Histogram) Overflow() int64 { return h.over }

// TimeSeries records (time, value) points of a cumulative quantity and can
// answer interval deltas and windowed rates. Times must be non-decreasing.
type TimeSeries struct {
	ts []float64
	vs []float64
}

// Add appends a point. Times must be non-decreasing; out-of-order adds panic.
func (s *TimeSeries) Add(t, v float64) {
	if n := len(s.ts); n > 0 && t < s.ts[n-1] {
		panic("stats: TimeSeries times must be non-decreasing")
	}
	s.ts = append(s.ts, t)
	s.vs = append(s.vs, v)
}

// N returns the number of points.
func (s *TimeSeries) N() int { return len(s.ts) }

// Last returns the last point, or zeros if empty.
func (s *TimeSeries) Last() (t, v float64) {
	if len(s.ts) == 0 {
		return 0, 0
	}
	return s.ts[len(s.ts)-1], s.vs[len(s.vs)-1]
}

// At returns the value at time t: the value of the latest point with
// time <= t, or 0 if t precedes the first point (cumulative counters
// start at zero).
func (s *TimeSeries) At(t float64) float64 {
	i := sort.SearchFloat64s(s.ts, t)
	// i is the first index with ts[i] >= t; step back over ties to include
	// the last point at exactly t.
	for i < len(s.ts) && s.ts[i] == t {
		i++
	}
	if i == 0 {
		return 0
	}
	return s.vs[i-1]
}

// Delta returns value(t2) - value(t1).
func (s *TimeSeries) Delta(t1, t2 float64) float64 { return s.At(t2) - s.At(t1) }

// Points returns copies of the stored times and values.
func (s *TimeSeries) Points() (ts, vs []float64) {
	ts = append([]float64(nil), s.ts...)
	vs = append([]float64(nil), s.vs...)
	return ts, vs
}
