package faults

import (
	"math/rand"

	"repro/internal/sim"
)

// Lossy is a consumer shim that randomly loses or corrupts frames on their
// way to the downstream consumer. Corrupted frames are discarded at the
// first checksum verification — i.e. here — under their own cause, so a
// run's losses split cleanly into "never arrived" and "arrived broken".
//
// Exactly one rng draw is consumed per frame regardless of outcome, so a
// seeded run's loss pattern is a pure function of the frame sequence:
// deterministic replay holds even when probabilities are zero.
type Lossy struct {
	// PLoss and PCorrupt are per-frame probabilities; their sum must not
	// exceed 1.
	PLoss    float64
	PCorrupt float64

	// OnDrop observes every injected drop (may be nil).
	OnDrop func(f *sim.Frame, cause sim.DropCause)

	rng  *rand.Rand
	next sim.Consumer

	delivered  int64
	drops      int64
	dropsCause map[sim.DropCause]int64
	dropsFlow  map[int]int64
}

// NewLossy returns a lossy shim already wired in front of next.
func NewLossy(rng *rand.Rand, next sim.Consumer, pLoss, pCorrupt float64) *Lossy {
	if next == nil {
		panic("faults: NewLossy requires a downstream consumer")
	}
	l := NewLossyStage(rng, pLoss, pCorrupt)
	l.next = next
	return l
}

// NewLossyStage returns an unwired lossy shim: a sim.Wrapper for use with
// sim.Chain, which calls SetNext.
func NewLossyStage(rng *rand.Rand, pLoss, pCorrupt float64) *Lossy {
	if rng == nil {
		panic("faults: NewLossyStage requires an rng")
	}
	if pLoss < 0 || pCorrupt < 0 || pLoss+pCorrupt > 1 {
		panic("faults: loss and corruption probabilities must be in [0,1] and sum to at most 1")
	}
	return &Lossy{
		PLoss: pLoss, PCorrupt: pCorrupt,
		rng:        rng,
		dropsCause: make(map[sim.DropCause]int64),
		dropsFlow:  make(map[int]int64),
	}
}

// SetNext wires the downstream consumer (the sim.Wrapper contract).
func (l *Lossy) SetNext(next sim.Consumer) { l.next = next }

// Deliver passes f downstream, loses it, or corrupts it.
func (l *Lossy) Deliver(f *sim.Frame) {
	if l.next == nil {
		panic("faults: Lossy.Deliver before SetNext (wire it via sim.Chain or NewLossy)")
	}
	u := l.rng.Float64() // exactly one draw per frame
	switch {
	case u < l.PLoss:
		l.drop(f, DropRandomLoss)
	case u < l.PLoss+l.PCorrupt:
		l.drop(f, DropCorrupt)
	default:
		l.delivered++
		l.next.Deliver(f)
	}
}

func (l *Lossy) drop(f *sim.Frame, cause sim.DropCause) {
	l.drops++
	l.dropsCause[cause]++
	l.dropsFlow[f.Flow]++
	if l.OnDrop != nil {
		l.OnDrop(f, cause)
	}
}

// Delivered returns the frames passed through intact.
func (l *Lossy) Delivered() int64 { return l.delivered }

// Drops returns the total injected drops.
func (l *Lossy) Drops() int64 { return l.drops }

// DropsFor returns the injected drops recorded under one cause.
func (l *Lossy) DropsFor(cause sim.DropCause) int64 { return l.dropsCause[cause] }

// DropsByFlow returns the injected drops charged to one flow.
func (l *Lossy) DropsByFlow(flow int) int64 { return l.dropsFlow[flow] }

// DropsByCause returns a copy of the per-cause counters.
func (l *Lossy) DropsByCause() map[sim.DropCause]int64 {
	out := make(map[sim.DropCause]int64, len(l.dropsCause))
	for c, n := range l.dropsCause {
		out[c] = n
	}
	return out
}
