package faults_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/eventq"
	"repro/internal/faults"
	"repro/internal/sched"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/topo"
)

func TestModulatedDegradation(t *testing.T) {
	// 100 B/s server at half speed during [1,3): a 200 B transmission
	// started at 0 does 100 B by t=1, then needs 2 real seconds for the
	// second 100 B.
	p := faults.NewModulated(server.NewConstantRate(100),
		[]faults.Episode{{Start: 1, Duration: 2, Factor: 0.5}})
	if got := p.Finish(0, 100); math.Abs(got-1) > 1e-9 {
		t.Errorf("pre-episode finish = %v, want 1", got)
	}
	if got := p.Finish(0, 200); math.Abs(got-3) > 1e-9 {
		t.Errorf("degraded finish = %v, want 3", got)
	}
	if got := p.MeanRate(); got != 100 {
		t.Errorf("MeanRate = %v", got)
	}
}

func TestModulatedStall(t *testing.T) {
	// Full stall during [1,3): work freezes for 2 s.
	p := faults.NewModulated(server.NewConstantRate(100),
		[]faults.Episode{{Start: 1, Duration: 2, Factor: 0}})
	if got := p.Finish(0, 200); math.Abs(got-4) > 1e-9 {
		t.Errorf("stall-spanning finish = %v, want 4", got)
	}
	// Starting inside the stall: nothing happens until t=3.
	if got := p.Finish(1.5, 50); math.Abs(got-3.5) > 1e-9 {
		t.Errorf("from-inside-stall finish = %v, want 3.5", got)
	}
}

func TestModulatedFlapping(t *testing.T) {
	// Stall [0.5,1), quarter speed [1.5,2): 150 B at 100 B/s.
	p := faults.NewModulated(server.NewConstantRate(100), []faults.Episode{
		{Start: 0.5, Duration: 0.5, Factor: 0},
		{Start: 1.5, Duration: 0.5, Factor: 0.25},
	})
	// 50 B by 0.5; frozen to 1.0; 50 B more by 1.5; 12.5 B-equivalents in
	// [1.5,2); remaining 37.5 B after 2.0 → 2.375.
	if got := p.Finish(0, 150); math.Abs(got-2.375) > 1e-9 {
		t.Errorf("flapping finish = %v, want 2.375", got)
	}
}

func TestModulatedTerminalStallReturnsNever(t *testing.T) {
	p := faults.NewModulated(server.NewConstantRate(100),
		[]faults.Episode{{Start: 1, Duration: math.Inf(1), Factor: 0}})
	if got := p.Finish(0, 50); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("pre-stall finish = %v, want 0.5", got)
	}
	if got := p.Finish(0, 200); !math.IsInf(got, 1) {
		t.Errorf("terminal stall finish = %v, want Never", got)
	}
	if got := p.Finish(2, 1); !math.IsInf(got, 1) {
		t.Errorf("from-inside-terminal finish = %v, want Never", got)
	}
}

func TestModulatedPropagatesInnerNever(t *testing.T) {
	// The wrapped process itself stalls terminally: Modulated must pass
	// Never through rather than unwarping infinity.
	inner := server.NewPiecewise([]float64{0, 1}, []float64{10, 0})
	p := faults.NewModulated(inner, []faults.Episode{{Start: 0, Duration: 1, Factor: 0.5}})
	if got := p.Finish(0, 100); !math.IsInf(got, 1) {
		t.Errorf("inner Never not propagated: %v", got)
	}
}

func TestModulatedValidation(t *testing.T) {
	cases := [][]faults.Episode{
		{{Start: 1, Duration: 1, Factor: 0.5}, {Start: 1.5, Duration: 1, Factor: 0.5}},     // overlap
		{{Start: 0, Duration: -1, Factor: 0.5}},                                            // bad duration
		{{Start: 0, Duration: 1, Factor: -0.1}},                                            // bad factor
		{{Start: 0, Duration: math.Inf(1), Factor: 0}, {Start: 5, Duration: 1, Factor: 1}}, // inf not last
	}
	for i, eps := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: invalid episodes accepted", i)
				}
			}()
			faults.NewModulated(server.NewConstantRate(1), eps)
		}()
	}
}

func TestRandomEpisodesDeterministic(t *testing.T) {
	a := faults.RandomEpisodes(rand.New(rand.NewSource(7)), 20, 10, 1)
	b := faults.RandomEpisodes(rand.New(rand.NewSource(7)), 20, 10, 1)
	if len(a) == 0 {
		t.Fatal("no episodes generated")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different counts: %d vs %d", len(a), len(b))
	}
	prevEnd := math.Inf(-1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("episode %d differs across identical seeds", i)
		}
		if a[i].Start < prevEnd || a[i].Start < 0 || a[i].Start >= 10 || a[i].Duration <= 0 {
			t.Fatalf("episode %d malformed: %+v", i, a[i])
		}
		prevEnd = a[i].End()
	}
}

func TestRandomOutagesDeterministic(t *testing.T) {
	a := faults.RandomOutages(rand.New(rand.NewSource(3)), 15, 10, 0.5)
	b := faults.RandomOutages(rand.New(rand.NewSource(3)), 15, 10, 0.5)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("counts: %d vs %d", len(a), len(b))
	}
	prevEnd := math.Inf(-1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("outage %d differs across identical seeds", i)
		}
		if a[i].At < prevEnd || a[i].Duration <= 0 {
			t.Fatalf("outage %d malformed: %+v", i, a[i])
		}
		prevEnd = a[i].At + a[i].Duration
	}
}

func TestScheduleOutagesOnLink(t *testing.T) {
	// Outage [0.5, 1.5): the frame in transmission is lost, the queued one
	// survives the outage and transmits on recovery.
	q := &eventq.Queue{}
	sink := sim.NewSink(q)
	sch := sched.NewFIFO()
	if err := sch.AddFlow(1, 1); err != nil {
		t.Fatal(err)
	}
	link := sim.NewLink(q, "l", sch, server.NewConstantRate(100), sink)
	faults.ScheduleOutages(q, link, []faults.Outage{{At: 0.5, Duration: 1}})
	var lastEnd float64
	link.OnDepart = func(f *sim.Frame, start, end float64) { lastEnd = end }
	q.At(0, func() {
		link.Deliver(&sim.Frame{Flow: 1, Bytes: 100})
		link.Deliver(&sim.Frame{Flow: 1, Bytes: 100})
	})
	q.Run()
	if sink.Count(1) != 1 || link.DropsFor(sim.DropLinkDown) != 1 {
		t.Errorf("delivered=%d link-down drops=%d, want 1 and 1",
			sink.Count(1), link.DropsFor(sim.DropLinkDown))
	}
	if math.Abs(lastEnd-2.5) > 1e-9 {
		t.Errorf("surviving frame finished at %v, want 2.5 (recovery 1.5 + 1 s)", lastEnd)
	}
}

func TestScheduleOutagesValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("overlapping outages accepted")
		}
	}()
	q := &eventq.Queue{}
	sch := sched.NewFIFO()
	link := sim.NewLink(q, "l", sch, server.NewConstantRate(1), sim.NewSink(q))
	faults.ScheduleOutages(q, link, []faults.Outage{
		{At: 0, Duration: 2}, {At: 1, Duration: 1},
	})
}

func TestLossyAccountingAndReplay(t *testing.T) {
	run := func(seed int64) (delivered, drops, loss, corrupt, f1, f2 int64) {
		q := &eventq.Queue{}
		sink := sim.NewSink(q)
		l := faults.NewLossyStage(rand.New(rand.NewSource(seed)), 0.2, 0.1)
		head := sim.Chain(sink, l)
		for i := 0; i < 1000; i++ {
			head.Deliver(&sim.Frame{Flow: 1 + i%2, Bytes: 100})
		}
		return l.Delivered(), l.Drops(),
			l.DropsFor(faults.DropRandomLoss), l.DropsFor(faults.DropCorrupt),
			l.DropsByFlow(1), l.DropsByFlow(2)
	}
	delivered, drops, loss, corrupt, f1, f2 := run(11)
	if delivered+drops != 1000 {
		t.Errorf("delivered %d + drops %d != 1000", delivered, drops)
	}
	if loss+corrupt != drops || f1+f2 != drops {
		t.Errorf("cause split %d+%d and flow split %d+%d must both equal drops %d",
			loss, corrupt, f1, f2, drops)
	}
	if loss == 0 || corrupt == 0 {
		t.Errorf("expected both causes at p=0.2/0.1 over 1000 frames: loss=%d corrupt=%d", loss, corrupt)
	}
	d2, dr2, lo2, co2, _, _ := run(11)
	if d2 != delivered || dr2 != drops || lo2 != loss || co2 != corrupt {
		t.Error("identical seeds produced different loss patterns")
	}
}

func TestLossyZeroProbabilityPassesEverything(t *testing.T) {
	q := &eventq.Queue{}
	sink := sim.NewSink(q)
	l := sim.Chain(sim.Consumer(sink), faults.NewLossyStage(rand.New(rand.NewSource(1)), 0, 0)).(*faults.Lossy)
	for i := 0; i < 100; i++ {
		l.Deliver(&sim.Frame{Flow: 1, Bytes: 10})
	}
	if l.Delivered() != 100 || l.Drops() != 0 || sink.Count(1) != 100 {
		t.Errorf("delivered=%d drops=%d sink=%d", l.Delivered(), l.Drops(), sink.Count(1))
	}
}

func TestFlowChurnOnNetwork(t *testing.T) {
	// Churn flow 2 on a live two-hop SFQ route while flow 1 keeps the links
	// loaded. Every churned frame must end up delivered or cause-counted.
	q := &eventq.Queue{}
	mk := func(name, from, to string, rate float64) topo.LinkSpec {
		return topo.LinkSpec{Name: name, From: from, To: to,
			Sched: core.New(), Proc: server.NewConstantRate(rate)}
	}
	var received int64
	churnSink := sim.ConsumerFunc(func(f *sim.Frame) { received++ })
	n, err := topo.Build(q,
		[]topo.LinkSpec{mk("ab", "a", "b", 1000), mk("bc", "b", "c", 2000)},
		[]topo.FlowSpec{{Flow: 1, Weight: 1, Route: []string{"ab", "bc"}}})
	if err != nil {
		t.Fatal(err)
	}
	const bg = 80
	q.At(0, func() {
		for i := 0; i < bg; i++ {
			n.Entry(1).Deliver(&sim.Frame{Flow: 1, Bytes: 100})
		}
	})
	churn := &faults.FlowChurn{
		Net:    n,
		Spec:   topo.FlowSpec{Flow: 2, Weight: 2, Route: []string{"ab", "bc"}, Sink: churnSink},
		Cycles: 6, Burst: 4, BurstBytes: 100,
		Dwell: 0.05, Retry: 0.02, Gap: 0.01,
	}
	churn.Start(q, 0.001)
	q.Run()
	if churn.Err != nil {
		t.Fatalf("churn error: %v", churn.Err)
	}
	if churn.Completed != 6 {
		t.Fatalf("completed %d cycles, want 6", churn.Completed)
	}
	sent := int64(6 * 4)
	if received+n.DropsByFlow(2) != sent {
		t.Errorf("accounting: received %d + drops %d != sent %d",
			received, n.DropsByFlow(2), sent)
	}
	if got := n.Sink(1).Count(1); got != bg {
		t.Errorf("background flow delivered %d, want %d", got, bg)
	}
}

func TestLossyStageUnwiredPanics(t *testing.T) {
	l := faults.NewLossyStage(rand.New(rand.NewSource(1)), 0.5, 0)
	defer func() {
		if recover() == nil {
			t.Error("Deliver on an unwired Lossy stage must panic, not drop silently")
		}
	}()
	l.Deliver(&sim.Frame{Flow: 1, Bytes: 10})
}
