// Package faults is a deterministic, seeded fault-injection layer over the
// simulator. It composes with the existing pieces instead of replacing
// them:
//
//   - Modulated wraps any server.Process and degrades it over scripted
//     episodes (rate degradation, flapping, full stalls — including
//     FC/EBF-violating zero-rate intervals), so a scheduler can be run
//     against a server that breaks the assumptions its analysis rests on.
//   - Outage schedules link up/down transitions on a sim.Link: the frame
//     in flight at failure time is lost (DropLinkDown), queued frames
//     survive the outage, and transmission resumes from the scheduler's
//     head on recovery.
//   - Lossy is a consumer shim injecting random frame loss and corruption
//     with per-cause, per-flow drop accounting.
//   - FlowChurn repeatedly adds and removes a flow on a live topo.Network,
//     exercising the RemoveFlow teardown paths under load.
//
// Every injector is driven either by an explicit script or by an explicit
// *rand.Rand, never by global randomness: the same seed always yields the
// same fault schedule, which is what lets the chaos conformance matrix
// assert deterministic replay.
package faults

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/eventq"
	"repro/internal/sim"
)

// Drop causes recorded by the fault injectors, extending the taxonomy in
// package sim.
const (
	// DropRandomLoss: the frame was discarded by the random-loss injector.
	DropRandomLoss sim.DropCause = "random-loss"
	// DropCorrupt: the frame was corrupted in transit and discarded at the
	// first checksum verification.
	DropCorrupt sim.DropCause = "corrupt"
)

// Episode is one interval of degraded service: between Start and
// Start+Duration the wrapped server runs at Factor times its scripted
// speed. Factor 0 is a full stall; Factor 1 is a no-op; factors above 1
// model over-provisioned recovery bursts. Outside every episode the factor
// is 1.
type Episode struct {
	Start    float64
	Duration float64 // may be math.Inf(1) for a terminal, permanent episode
	Factor   float64
}

// End returns the episode's end time (possibly +Inf).
func (e Episode) End() float64 { return e.Start + e.Duration }

func validEpisodes(eps []Episode) bool {
	prevEnd := math.Inf(-1)
	for i, e := range eps {
		if e.Start < 0 || e.Start < prevEnd {
			return false
		}
		if e.Duration <= 0 || math.IsNaN(e.Duration) {
			return false
		}
		if math.IsInf(e.Duration, 1) && i != len(eps)-1 {
			return false // an infinite episode must be the last
		}
		if e.Factor < 0 || math.IsNaN(e.Factor) || math.IsInf(e.Factor, 0) {
			return false
		}
		prevEnd = e.End()
	}
	return true
}

// RandomEpisodes draws up to n degradation episodes inside [0, horizon),
// each lasting at most maxDur. Roughly a third are full stalls (factor 0);
// the rest degrade to a uniform factor in (0, 1). Overlapping draws are
// discarded, so fewer than n episodes may be returned. The result is
// sorted, non-overlapping, and fully determined by rng.
func RandomEpisodes(rng *rand.Rand, n int, horizon, maxDur float64) []Episode {
	if n <= 0 || horizon <= 0 || maxDur <= 0 {
		panic("faults: RandomEpisodes needs positive n, horizon, maxDur")
	}
	draws := make([]Episode, 0, n)
	for i := 0; i < n; i++ {
		e := Episode{
			Start:    rng.Float64() * horizon,
			Duration: rng.Float64()*maxDur + maxDur*0.01,
		}
		if rng.Float64() < 1.0/3 {
			e.Factor = 0
		} else {
			e.Factor = 0.05 + 0.9*rng.Float64()
		}
		draws = append(draws, e)
	}
	sort.Slice(draws, func(i, j int) bool { return draws[i].Start < draws[j].Start })
	eps := draws[:0]
	prevEnd := math.Inf(-1)
	for _, e := range draws {
		if e.Start < prevEnd {
			continue
		}
		eps = append(eps, e)
		prevEnd = e.End()
	}
	return eps
}

// Outage is one scheduled link failure: the link goes down at At and comes
// back at At+Duration.
type Outage struct {
	At       float64
	Duration float64
}

// ScheduleOutages installs the outages on a link via the event queue. The
// outages must be sorted and non-overlapping with positive durations.
func ScheduleOutages(q *eventq.Queue, link *sim.Link, outages []Outage) {
	prevEnd := math.Inf(-1)
	for _, o := range outages {
		if o.At < 0 || o.At < prevEnd || o.Duration <= 0 ||
			math.IsNaN(o.At) || math.IsNaN(o.Duration) || math.IsInf(o.Duration, 1) {
			panic("faults: outages must be sorted, non-overlapping, finite, positive")
		}
		prevEnd = o.At + o.Duration
		q.AtCall(o.At, linkFail, link)
		q.AtCall(prevEnd, linkRecover, link)
	}
}

// linkFail / linkRecover dispatch outage transitions without the per-outage
// method-value allocation of q.At(at, link.Fail).
func linkFail(arg any)    { arg.(*sim.Link).Fail() }
func linkRecover(arg any) { arg.(*sim.Link).Recover() }

// RandomOutages draws up to n link outages inside [0, horizon), each
// lasting at most maxDur, sorted and non-overlapping (overlapping draws
// are discarded). Fully determined by rng.
func RandomOutages(rng *rand.Rand, n int, horizon, maxDur float64) []Outage {
	if n <= 0 || horizon <= 0 || maxDur <= 0 {
		panic("faults: RandomOutages needs positive n, horizon, maxDur")
	}
	draws := make([]Outage, 0, n)
	for i := 0; i < n; i++ {
		draws = append(draws, Outage{
			At:       rng.Float64() * horizon,
			Duration: rng.Float64()*maxDur + maxDur*0.01,
		})
	}
	sort.Slice(draws, func(i, j int) bool { return draws[i].At < draws[j].At })
	out := draws[:0]
	prevEnd := math.Inf(-1)
	for _, o := range draws {
		if o.At < prevEnd {
			continue
		}
		out = append(out, o)
		prevEnd = o.At + o.Duration
	}
	return out
}
