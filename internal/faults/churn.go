package faults

import (
	"errors"
	"fmt"

	"repro/internal/eventq"
	"repro/internal/sim"
	"repro/internal/topo"
)

// FlowChurn repeatedly adds and removes one flow on a live topo.Network:
// each cycle adds the flow, injects a burst, then retries RemoveFlow until
// the flow drains (topo refuses removal while frames are queued). It
// drives exactly the teardown paths a control plane would: scheduler
// RemoveFlow on every hop, link bookkeeping release, and stranded-frame
// drop accounting for frames still in flight at teardown time.
type FlowChurn struct {
	Net  *topo.Network
	Spec topo.FlowSpec

	// Cycles is the number of add/remove rounds to run.
	Cycles int

	// Burst frames of BurstBytes each are injected right after every add.
	Burst      int
	BurstBytes float64

	// Dwell is the delay from add to the first removal attempt; Retry is
	// the back-off between refused removal attempts; Gap is the pause
	// between a successful removal and the next add.
	Dwell, Retry, Gap float64

	// Completed counts finished cycles; Retries counts refused removal
	// attempts (ErrFlowBusy); Err holds the first unexpected error, which
	// also stops the churn.
	Completed int
	Retries   int
	Err       error
}

// Start schedules the first cycle at time `at` on q. The churn then drives
// itself from the event queue until Cycles cycles completed or an
// unexpected error occurred.
func (c *FlowChurn) Start(q *eventq.Queue, at float64) {
	if c.Net == nil || c.Cycles <= 0 || c.Burst <= 0 || c.BurstBytes <= 0 ||
		c.Dwell <= 0 || c.Retry <= 0 || c.Gap <= 0 {
		panic("faults: FlowChurn requires a network and positive cycle parameters")
	}
	q.At(at, c.addAndBurst)
}

func (c *FlowChurn) addAndBurst() {
	if err := c.Net.AddFlow(c.Spec); err != nil {
		c.Err = fmt.Errorf("faults: churn add (cycle %d): %w", c.Completed, err)
		return
	}
	entry := c.Net.Entry(c.Spec.Flow)
	now := c.Net.Q.Now()
	for i := 0; i < c.Burst; i++ {
		entry.Deliver(&sim.Frame{Flow: c.Spec.Flow, Bytes: c.BurstBytes, Created: now})
	}
	c.Net.Q.After(c.Dwell, c.tryRemove)
}

func (c *FlowChurn) tryRemove() {
	err := c.Net.RemoveFlow(c.Spec.Flow)
	if errors.Is(err, topo.ErrFlowBusy) {
		c.Retries++
		c.Net.Q.After(c.Retry, c.tryRemove)
		return
	}
	if err != nil {
		c.Err = fmt.Errorf("faults: churn remove (cycle %d): %w", c.Completed, err)
		return
	}
	c.Completed++
	if c.Completed < c.Cycles {
		c.Net.Q.After(c.Gap, c.addAndBurst)
	}
}
