package faults

import (
	"math"

	"repro/internal/server"
)

// Modulated degrades any server.Process over scripted episodes. The
// composition is a time warp: the wrapped process runs on its own clock,
// and that clock advances at rate Factor during an episode (rate 1
// outside), so a factor-½ episode makes the inner server do everything at
// half speed and a factor-0 episode freezes it entirely. This composes
// with every existing capacity process — a constant-rate server gains
// scripted brownouts, a Markov-modulated server gains stalls on top of its
// own fluctuation — which is exactly the "server fluctuates beyond the
// analyzed bounds" regime of the paper's robustness discussion: SFQ's
// Theorem 1 makes no assumption about the server, WFQ's guarantees assume
// the rate it simulates GPS at.
type Modulated struct {
	inner server.Process
	eps   []Episode
}

// NewModulated wraps inner with the given episodes, which must be sorted,
// non-overlapping, non-negative and finite in factor; only the last may
// have infinite duration (a permanent terminal fault).
func NewModulated(inner server.Process, eps []Episode) *Modulated {
	if inner == nil {
		panic("faults: NewModulated requires a process")
	}
	if !validEpisodes(eps) {
		panic("faults: episodes must be sorted, non-overlapping, with positive durations and finite factors")
	}
	cp := append([]Episode(nil), eps...)
	return &Modulated{inner: inner, eps: cp}
}

// warp maps real time t to the inner clock: episode overlap contributes
// Factor seconds of inner time per real second, everything else 1:1.
func (m *Modulated) warp(t float64) float64 {
	w := t
	for _, e := range m.eps {
		if e.Start >= t {
			break
		}
		overlap := math.Min(e.End(), t) - e.Start
		w -= (1 - e.Factor) * overlap
	}
	return w
}

// unwarp returns the earliest real time at which the inner clock reaches
// w, or server.Never when the clock plateaus forever before reaching it
// (a terminal zero-factor episode).
func (m *Modulated) unwarp(w float64) float64 {
	rt, wt := 0.0, 0.0 // real time, inner (warped) time
	for _, e := range m.eps {
		// The 1:1 gap before the episode.
		if w <= wt+(e.Start-rt) {
			return rt + (w - wt)
		}
		wt += e.Start - rt
		rt = e.Start
		// Inside the episode.
		if e.Factor > 0 {
			if w <= wt+(e.End()-rt)*e.Factor {
				return rt + (w-wt)/e.Factor
			}
		}
		if math.IsInf(e.End(), 1) {
			return server.Never // zero-factor forever: the clock never gets there
		}
		wt += (e.End() - rt) * e.Factor
		rt = e.End()
	}
	return rt + (w - wt)
}

// Finish maps the start time onto the inner clock, asks the wrapped
// process, and maps the answer back. A transmission that lands in a
// terminal stall (of either the wrapper or the wrapped process) returns
// server.Never.
func (m *Modulated) Finish(t, bytes float64) float64 {
	innerEnd := m.inner.Finish(m.warp(t), bytes)
	if math.IsInf(innerEnd, 1) || math.IsNaN(innerEnd) {
		return server.Never
	}
	end := m.unwarp(innerEnd)
	if end < t {
		return t // guard the warp/unwarp float round-trip against regression
	}
	return end
}

// MeanRate returns the wrapped process's mean rate: finite episodes are
// transient and do not move the long-run average.
func (m *Modulated) MeanRate() float64 { return m.inner.MeanRate() }
