package qos

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRateAt(t *testing.T) {
	pkts := []TaggedPacket{
		{Flow: 1, Start: 0, Finish: 2, Rate: 100},
		{Flow: 1, Start: 2, Finish: 3, Rate: 400}, // rate change at v=2
		{Flow: 2, Start: 1, Finish: 4, Rate: 50},
	}
	cases := []struct {
		v    float64
		want float64
	}{
		{-1, 0}, {0, 100}, {0.5, 100}, {1, 150}, {2, 450}, {3, 50}, {4, 0},
	}
	for _, c := range cases {
		if got := RateAt(pkts, c.v); got != c.want {
			t.Errorf("RateAt(%v) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestMaxAggregateRate(t *testing.T) {
	pkts := []TaggedPacket{
		{Flow: 1, Start: 0, Finish: 2, Rate: 100},
		{Flow: 2, Start: 1, Finish: 4, Rate: 50},
		{Flow: 3, Start: 1.5, Finish: 1.6, Rate: 500},
	}
	m, at := MaxAggregateRate(pkts)
	if m != 650 || at != 1.5 {
		t.Errorf("max = %v at %v, want 650 at 1.5", m, at)
	}
	if m, _ := MaxAggregateRate(nil); m != 0 {
		t.Errorf("empty max = %v", m)
	}
}

func TestCapacityRespected(t *testing.T) {
	pkts := []TaggedPacket{
		{Flow: 1, Start: 0, Finish: 1, Rate: 600},
		{Flow: 2, Start: 0, Finish: 1, Rate: 400},
	}
	if !CapacityRespected(pkts, 1000) {
		t.Error("exactly C should be respected")
	}
	if CapacityRespected(pkts, 999) {
		t.Error("above C should be rejected")
	}
}

// Property: per-flow chained tags (S_{j+1} = F_j) with rates summing to
// <= C per flow set always respect capacity.
func TestQuickChainedTagsRespectCapacity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var pkts []TaggedPacket
		nf := 1 + rng.Intn(4)
		budget := 1000.0
		for fl := 1; fl <= nf; fl++ {
			r := budget / float64(nf) * (0.5 + rng.Float64()*0.5)
			v := rng.Float64()
			for j := 0; j < 10; j++ {
				l := 1 + rng.Float64()*100
				pkts = append(pkts, TaggedPacket{Flow: fl, Start: v, Finish: v + l/r, Rate: r})
				v += l / r
				if rng.Intn(4) == 0 {
					v += rng.Float64() // idle gap: S > F_prev
				}
			}
		}
		return CapacityRespected(pkts, budget)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
