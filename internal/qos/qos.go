// Package qos implements the analytical machinery of the paper: expected
// arrival times (eq 37), the fairness lower bound of Golestani (§1.2), the
// fairness bounds of Theorem 1, the throughput guarantees of Theorems 2–3,
// the single-server delay guarantees of Theorems 4–5 (and the SCFQ/WFQ
// comparisons of eqs 56–60), the end-to-end composition of Theorem 6 /
// Corollary 1, the FC-parameter recursion for hierarchical link sharing
// (eq 65), the delay-shifting condition (eq 73), and the Delay EDD
// schedulability test and bound of Theorem 7.
//
// Units follow the repository convention: bytes, bytes/second, seconds.
package qos

import (
	"errors"
	"math"

	"repro/internal/server"
)

// EAT tracks the expected arrival time chain of one flow (eq 37):
//
//	EAT(p^j, r^j) = max{ A(p^j), EAT(p^{j-1}, r^{j-1}) + l^{j-1}/r^{j-1} }
//
// with EAT(p^0, r^0) = −∞.
type EAT struct {
	next float64 // EAT(prev) + l_prev/r_prev
	init bool
}

// Next returns EAT(p^j) for a packet arriving at `arrival` with length
// `length` and rate `rate`, and advances the chain.
func (e *EAT) Next(arrival, length, rate float64) float64 {
	eat := arrival
	if e.init && e.next > arrival {
		eat = e.next
	}
	e.init = true
	e.next = eat + length/rate
	return eat
}

// FairnessLowerBound is Golestani's lower bound on the fairness measure of
// any packet scheduling algorithm (§1.2):
//
//	H(f,m) >= (l_f^max/r_f + l_m^max/r_m) / 2.
func FairnessLowerBound(lfMax, rf, lmMax, rm float64) float64 {
	return (lfMax/rf + lmMax/rm) / 2
}

// SFQFairnessBound is Theorem 1: for any interval in which flows f and m
// are both backlogged at an SFQ server (of any service-rate behaviour),
//
//	|W_f/r_f − W_m/r_m| <= l_f^max/r_f + l_m^max/r_m.
func SFQFairnessBound(lfMax, rf, lmMax, rm float64) float64 {
	return lfMax/rf + lmMax/rm
}

// SCFQFairnessBound equals the SFQ bound [8].
func SCFQFairnessBound(lfMax, rf, lmMax, rm float64) float64 {
	return SFQFairnessBound(lfMax, rf, lmMax, rm)
}

// DRRFairnessBound is the DRR fairness measure quoted in §1.2:
// 1 + l_f^max/r_f + l_m^max/r_m when min_n r_n = 1 (weights normalized so
// the smallest is one quantum unit).
func DRRFairnessBound(lfMax, rf, lmMax, rm float64) float64 {
	return 1 + lfMax/rf + lmMax/rm
}

// SFQThroughputBound is Theorem 2: the minimum service a flow backlogged
// throughout an interval of length dt receives from an SFQ FC server with
// Σ r_n <= C:
//
//	W_f >= r_f·dt − r_f·(Σ l_n^max)/C − r_f·δ/C − l_f^max.
//
// sumLmax is Σ_{n∈Q} l_n^max over every flow at the server.
func SFQThroughputBound(fc server.FCParams, rf, lfMax, sumLmax, dt float64) float64 {
	return rf*dt - rf*sumLmax/fc.C - rf*fc.Delta/fc.C - lfMax
}

// SFQThroughputFC is the FC characterization of the bandwidth guaranteed
// to a flow (or class) by an SFQ FC server — the recursion of eq (65) that
// powers the hierarchical analysis: the virtual server of class f is FC
// with parameters (r_f, r_f·Σl_n^max/C + r_f·δ/C + l_f^max).
func SFQThroughputFC(fc server.FCParams, rf, lfMax, sumLmax float64) server.FCParams {
	return server.FCParams{
		C:     rf,
		Delta: rf*sumLmax/fc.C + rf*fc.Delta/fc.C + lfMax,
	}
}

// SFQThroughputTail is Theorem 3: for an SFQ EBF server, the probability
// that the service received over an interval of length dt falls below
// the Theorem-2 bound minus r_f·γ/C is at most B·e^{−αγ}.
func SFQThroughputTail(ebf server.EBFParams, rf, lfMax, sumLmax, dt, gamma float64) (bound, prob float64) {
	fc := server.FCParams{C: ebf.C, Delta: ebf.Delta}
	bound = SFQThroughputBound(fc, rf, lfMax, sumLmax, dt) - rf*gamma/ebf.C
	prob = ebf.TailBound(gamma)
	return bound, prob
}

// SFQDelayBound is Theorem 4: at an SFQ FC server whose capacity is never
// exceeded (Σ R_n(v) <= C), packet p_f^j departs by
//
//	EAT(p_f^j) + Σ_{n≠f} l_n^max/C + l_f^j/C + δ/C.
//
// sumOtherLmax is Σ_{n∈Q, n≠f} l_n^max.
func SFQDelayBound(fc server.FCParams, eat, lj, sumOtherLmax float64) float64 {
	return eat + sumOtherLmax/fc.C + lj/fc.C + fc.Delta/fc.C
}

// SFQDelayTail is Theorem 5: at an SFQ EBF server the departure time
// exceeds the Theorem-4 bound plus γ/C with probability at most B·e^{−αγ}.
func SFQDelayTail(ebf server.EBFParams, eat, lj, sumOtherLmax, gamma float64) (deadline, prob float64) {
	fc := server.FCParams{C: ebf.C, Delta: ebf.Delta}
	deadline = SFQDelayBound(fc, eat, lj, sumOtherLmax) + gamma/ebf.C
	prob = ebf.TailBound(gamma)
	return deadline, prob
}

// SCFQDelayBound is the tight SCFQ bound of eq (56) for a constant-rate
// server: EAT + Σ_{n≠f} l_n^max/C + l_f^j/r_f^j.
func SCFQDelayBound(c, eat, lj, rj, sumOtherLmax float64) float64 {
	return eat + sumOtherLmax/c + lj/rj
}

// SCFQvsSFQDelayGap is eq (57): the extra maximum delay a packet can incur
// under SCFQ relative to SFQ at a constant-rate server, l/r − l/C. The
// paper's example: r = 64 Kb/s, l = 200 B, C = 100 Mb/s gives 24.4 ms.
func SCFQvsSFQDelayGap(c, lj, rj float64) float64 {
	return lj/rj - lj/c
}

// WFQDelayBound is the WFQ guarantee quoted in §2.3:
// EAT + l_f^j/r_f^j + l_max/C, where lmax is the maximum packet length at
// the server.
func WFQDelayBound(c, eat, lj, rj, lmax float64) float64 {
	return eat + lj/rj + lmax/c
}

// WFQvsSFQDelayGap is Δ(p_f^j) of eq (58): the reduction in maximum delay
// SFQ offers relative to WFQ,
//
//	Δ = l_f^j/r_f^j + l_max/C − Σ_{n≠f} l_n^max/C − l_f^j/C.
//
// Positive Δ means SFQ's bound is lower.
func WFQvsSFQDelayGap(c, lj, rj, lmax, sumOtherLmax float64) float64 {
	return lj/rj + lmax/c - sumOtherLmax/c - lj/c
}

// WFQvsSFQDelayGapUniform is eq (59), the uniform-packet-size special case
// with |Q| flows of packet length l: Δ = l/r_f − (|Q|−1)·l/C. By eq (60)
// it is non-negative exactly when r_f/C <= 1/(|Q|−1).
func WFQvsSFQDelayGapUniform(c, l, rf float64, q int) float64 {
	return l/rf - float64(q-1)*l/c
}

// CrossoverShare is eq (60): SFQ beats WFQ on maximum delay for flows
// whose share r_f/C is at most 1/(|Q|−1).
func CrossoverShare(q int) float64 {
	if q <= 1 {
		return math.Inf(1)
	}
	return 1 / float64(q-1)
}

// ServerSpec describes one hop for the end-to-end composition (eq 61
// form): the deterministic part β of its delay guarantee and the EBF tail
// parameters (B = 0 for deterministic/FC servers; λ = αC).
type ServerSpec struct {
	Beta   float64 // β^i: deterministic delay term, seconds
	B      float64 // tail prefactor (0 for FC)
	Lambda float64 // tail exponent in 1/seconds (ignored when B == 0)
	Prop   float64 // propagation delay to the next hop τ^{i,i+1}
}

// SFQServerSpec builds a hop spec from Theorem 4/5: β = Σ_{n≠f} l_n^max/C
// + l_f/C + δ/C; for an EBF server λ = α·C.
func SFQServerSpec(c, delta, lj, sumOtherLmax, b, alpha, prop float64) ServerSpec {
	return ServerSpec{
		Beta:   sumOtherLmax/c + lj/c + delta/c,
		B:      b,
		Lambda: alpha * c,
		Prop:   prop,
	}
}

// EndToEnd composes K hop specs per Corollary 1. It returns the
// deterministic part D of the end-to-end departure bound relative to
// EAT^1(p^j) — that is, L^K(p^j) <= EAT^1 + D + γ with probability at
// least 1 − B_tot·e^{−γ/Λ} — together with B_tot = Σ B^n and
// Λ = Σ 1/λ^n (so the tail exponent is 1/Λ). For all-FC paths B_tot = 0
// and the bound is deterministic.
func EndToEnd(hops []ServerSpec) (d, btot, lambdaInv float64) {
	for i, h := range hops {
		d += h.Beta
		if i < len(hops)-1 {
			d += h.Prop
		}
		if h.B > 0 {
			btot += h.B
			if h.Lambda > 0 {
				lambdaInv += 1 / h.Lambda
			}
		}
	}
	return d, btot, lambdaInv
}

// EndToEndTail evaluates the Corollary-1 tail: the probability the
// end-to-end departure exceeds EAT^1 + D + γ.
func EndToEndTail(btot, lambdaInv, gamma float64) float64 {
	if btot == 0 {
		return 0
	}
	if lambdaInv == 0 {
		return btot
	}
	p := btot * math.Exp(-gamma/lambdaInv)
	if p > 1 {
		return 1
	}
	return p
}

// LeakyBucketE2EDelay bounds the end-to-end delay of a (σ, ρ)-constrained
// flow across hops with rate r (Appendix A.5): d <= σ/r − l/r + D where D
// is the deterministic composition from EndToEnd. (The e^j <= σ/r result
// of [9] gives EAT^1 − A^1 <= σ/r − l/r.)
func LeakyBucketE2EDelay(sigma, rate, l, d float64) float64 {
	return sigma/rate - l/rate + d
}

// EDDFlowSpec describes a Delay EDD flow for the schedulability test.
type EDDFlowSpec struct {
	Rate     float64 // r_n, bytes/s
	Length   float64 // l_n, bytes (fixed packet size)
	Deadline float64 // d_n, seconds
}

// ErrNotSchedulable is returned when the EDD test fails.
var ErrNotSchedulable = errors.New("qos: Delay EDD flow set not schedulable")

// EDDSchedulable checks condition (67) of Theorem 7,
//
//	∀t>0:  Σ_n max{0, ceil((t−d_n)·r_n/l_n)}·l_n/C <= t,
//
// on the discrete grid of step points up to `horizon` (the condition is
// piecewise linear between the points where any ceil(...) increments, so
// checking at those breakpoints suffices).
func EDDSchedulable(flows []EDDFlowSpec, c, horizon float64) error {
	// Collect breakpoints: t = d_n + k·l_n/r_n for each flow.
	var points []float64
	for _, f := range flows {
		if f.Rate <= 0 || f.Length <= 0 || f.Deadline < 0 {
			return errors.New("qos: invalid EDD flow spec")
		}
		step := f.Length / f.Rate
		for t := f.Deadline; t <= horizon; t += step {
			points = append(points, t+1e-12) // just after each increment
		}
	}
	for _, t := range points {
		demand := 0.0
		for _, f := range flows {
			k := math.Ceil((t - f.Deadline) * f.Rate / f.Length)
			if k > 0 {
				demand += k * f.Length / c
			}
		}
		if demand > t+1e-9 {
			return ErrNotSchedulable
		}
	}
	return nil
}

// EDDDelayBound is Theorem 7: on a (C, δ) FC Delay EDD server satisfying
// (67), packet p_f^j completes by D(p_f^j) + l_max/C + δ/C.
func EDDDelayBound(fc server.FCParams, deadline, lmax float64) float64 {
	return deadline + lmax/fc.C + fc.Delta/fc.C
}

// DelayShiftImproves is condition (73): with Q flows of packet length l on
// a (C, δ) FC server partitioned into K classes, hierarchically scheduling
// a flow inside class i (with |Q_i| flows and class rate C_i) lowers its
// delay bound iff (|Q_i|+1)/(|Q|−K) < C_i/C.
func DelayShiftImproves(qi, q, k int, ci, c float64) bool {
	return float64(qi+1)/float64(q-k) < ci/c
}

// FADelayBound is Theorem 9: a Fair Airport server with minimum capacity C
// guarantees departure by EAT + l_f^j/r_f + l_max/C — the WFQ guarantee.
func FADelayBound(c, eat, lj, rf, lmax float64) float64 {
	return eat + lj/rf + lmax/c
}

// FAFairnessBound is Theorem 8: the FA unfairness over jointly backlogged
// intervals is at most 3(l_f^max/r_f + l_m^max/r_m) + 2·l_max/C.
func FAFairnessBound(c, lfMax, rf, lmMax, rm, lmax float64) float64 {
	return 3*(lfMax/rf+lmMax/rm) + 2*lmax/c
}
