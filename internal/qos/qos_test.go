package qos

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/server"
	"repro/internal/units"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

// TestEATChain checks eq (37) on a worked sequence.
func TestEATChain(t *testing.T) {
	var e EAT
	// rate 100 B/s, 100 B packets: transmission "slots" of 1 s.
	if got := e.Next(0, 100, 100); got != 0 {
		t.Errorf("EAT(p1) = %v, want arrival 0", got)
	}
	// Back-to-back arrival: EAT = prev EAT + l/r = 1.
	if got := e.Next(0.2, 100, 100); got != 1 {
		t.Errorf("EAT(p2) = %v, want 1", got)
	}
	// Late arrival after the chain: EAT = arrival.
	if got := e.Next(10, 100, 100); got != 10 {
		t.Errorf("EAT(p3) = %v, want 10", got)
	}
}

// Property: EAT is non-decreasing and never below the arrival time.
func TestQuickEATMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var e EAT
		tprev := 0.0
		eatPrev := math.Inf(-1)
		for i := 0; i < 50; i++ {
			tprev += rng.Float64()
			eat := e.Next(tprev, 1+rng.Float64()*100, 1+rng.Float64()*100)
			if eat < tprev || eat < eatPrev {
				return false
			}
			eatPrev = eat
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestPaperDelayNumbers pins the numeric illustrations of §2.3. The
// paper's "64 Kb/s" is 65536 b/s (1024-based): that convention reproduces
// the quoted 24.4 ms exactly. The mixed-flow deltas (20.39 ms / −2.48 ms)
// are matched in shape with a rounding-slop tolerance since the paper does
// not state its exact unit base there.
func TestPaperDelayNumbers(t *testing.T) {
	kib := func(r float64) float64 { return r * 1024 / 8 } // 1024-based Kb/s → bytes/s
	gap := SCFQvsSFQDelayGap(units.Mbps(100), 200, kib(64))
	approx(t, "SCFQ-SFQ gap", units.ToMillis(gap), 24.4, 0.05)

	// "the difference increases to 122 ms for K = 5".
	approx(t, "5-hop gap", units.ToMillis(5*gap), 122, 0.1)

	// "70 flows of 1 Mb/s and 200 flows of 64 Kb/s: the 64 Kb/s flows'
	// maximum delay reduces by 20.39 ms, the 1 Mb/s flows' increases by
	// 2.48 ms" (eq 58 with l = 200 B for every flow).
	const l = 200.0
	c := units.Mbps(100)
	nFlows := 270
	sumOther := float64(nFlows-1) * l
	dLow := WFQvsSFQDelayGap(c, l, kib(64), l, sumOther)
	approx(t, "low-rate delta", units.ToMillis(dLow), 20.39, 0.5)
	dHigh := WFQvsSFQDelayGap(c, l, units.Mbps(1), l, sumOther)
	approx(t, "high-rate delta", units.ToMillis(dHigh), -2.48, 0.5)
}

// TestCrossover pins eq (60): SFQ wins for shares below 1/(|Q|-1).
func TestCrossover(t *testing.T) {
	c := units.Mbps(100)
	const l = 200.0
	q := 11
	share := CrossoverShare(q) // 0.1
	if share != 0.1 {
		t.Fatalf("crossover share = %v", share)
	}
	below := WFQvsSFQDelayGapUniform(c, l, 0.09*c, q)
	above := WFQvsSFQDelayGapUniform(c, l, 0.11*c, q)
	if below <= 0 {
		t.Errorf("Δ for share below crossover = %v, want > 0", below)
	}
	if above >= 0 {
		t.Errorf("Δ for share above crossover = %v, want < 0", above)
	}
	if !math.IsInf(CrossoverShare(1), 1) {
		t.Error("single-flow crossover should be +Inf")
	}
}

// TestFairnessBounds sanity-checks the Table 1 formulas, including the
// paper's DRR example (H = 1.02 vs 0.02 for r = 100, l = 1).
func TestFairnessBounds(t *testing.T) {
	approx(t, "lower bound", FairnessLowerBound(1, 100, 1, 100), 0.01, 1e-12)
	approx(t, "SFQ bound", SFQFairnessBound(1, 100, 1, 100), 0.02, 1e-12)
	approx(t, "SCFQ bound", SCFQFairnessBound(1, 100, 1, 100), 0.02, 1e-12)
	approx(t, "DRR bound", DRRFairnessBound(1, 100, 1, 100), 1.02, 1e-12)
	if DRRFairnessBound(1, 100, 1, 100)/SCFQFairnessBound(1, 100, 1, 100) != 51 {
		t.Error("the paper's 51x DRR/SCFQ ratio (1.02/0.02) should hold")
	}
}

// TestThroughputFCRecursion checks eq (65): the virtual server of a class
// of an SFQ FC server is itself FC with the stated parameters.
func TestThroughputFCRecursion(t *testing.T) {
	link := server.FCParams{C: 1000, Delta: 50}
	// Class with rate 400, l_f^max = 100, Σ l_n^max = 300.
	sub := SFQThroughputFC(link, 400, 100, 300)
	approx(t, "sub rate", sub.C, 400, 1e-12)
	approx(t, "sub delta", sub.Delta, 400*300/1000.0+400*50/1000.0+100, 1e-12)

	// Second level of the recursion nests cleanly.
	subsub := SFQThroughputFC(sub, 100, 50, 150)
	approx(t, "subsub rate", subsub.C, 100, 1e-12)
	if subsub.Delta <= sub.Delta*100/400 {
		t.Error("nested delta should include the parent's burst terms")
	}
}

// TestThroughputBoundMatchesFC: Theorem 2's bound equals the FC
// characterization evaluated at dt.
func TestThroughputBoundMatchesFC(t *testing.T) {
	link := server.FCParams{C: 1000, Delta: 50}
	fc := SFQThroughputFC(link, 400, 100, 300)
	for _, dt := range []float64{0.1, 1, 10} {
		a := SFQThroughputBound(link, 400, 100, 300, dt)
		b := fc.FCBound(dt)
		approx(t, "bound vs FC", a, b, 1e-9)
	}
}

// TestDelayBounds checks Theorems 4/5 and the SCFQ/WFQ comparison shapes.
func TestDelayBounds(t *testing.T) {
	fc := server.FCParams{C: 1000, Delta: 20}
	d := SFQDelayBound(fc, 5, 100, 300)
	approx(t, "Theorem 4", d, 5+300/1000.0+100/1000.0+20/1000.0, 1e-12)

	scfq := SCFQDelayBound(1000, 5, 100, 10, 300)
	if scfq <= d {
		t.Errorf("SCFQ bound %v should exceed SFQ bound %v for a low-rate flow", scfq, d)
	}
	wfq := WFQDelayBound(1000, 5, 100, 10, 100)
	if wfq <= d {
		t.Errorf("WFQ bound %v should exceed SFQ bound %v for a low-rate flow", wfq, d)
	}

	ebf := server.EBFParams{C: 1000, B: 1, Alpha: 0.01, Delta: 20}
	deadline, prob := SFQDelayTail(ebf, 5, 100, 300, 100)
	approx(t, "Theorem 5 deadline", deadline, d+100/1000.0, 1e-12)
	approx(t, "Theorem 5 tail", prob, math.Exp(-1), 1e-12)

	bound, p2 := SFQThroughputTail(ebf, 400, 100, 300, 1, 100)
	if bound >= SFQThroughputBound(server.FCParams{C: 1000, Delta: 20}, 400, 100, 300, 1) {
		t.Error("EBF throughput bound should sit below the FC bound by r·γ/C")
	}
	approx(t, "Theorem 3 tail", p2, math.Exp(-1), 1e-12)
}

// TestEndToEndComposition checks Corollary 1 for deterministic and
// stochastic paths.
func TestEndToEndComposition(t *testing.T) {
	// Three FC hops.
	hops := []ServerSpec{
		{Beta: 0.01, Prop: 0.002},
		{Beta: 0.02, Prop: 0.003},
		{Beta: 0.03, Prop: 0.004}, // final Prop unused
	}
	d, btot, li := EndToEnd(hops)
	approx(t, "deterministic D", d, 0.01+0.002+0.02+0.003+0.03, 1e-12)
	if btot != 0 || li != 0 {
		t.Error("all-FC path should be deterministic")
	}
	if EndToEndTail(btot, li, 0) != 0 {
		t.Error("deterministic tail should be 0")
	}

	// Mixed FC + EBF hops: B sums, 1/λ sums.
	hops[1].B = 0.5
	hops[1].Lambda = 100
	hops[2].B = 0.25
	hops[2].Lambda = 50
	_, btot, li = EndToEnd(hops)
	approx(t, "B total", btot, 0.75, 1e-12)
	approx(t, "lambda inv", li, 1/100.0+1/50.0, 1e-12)
	p := EndToEndTail(btot, li, 0.03)
	approx(t, "tail", p, 0.75*math.Exp(-1), 1e-9)
	if EndToEndTail(5, li, 0) != 1 {
		t.Error("tail should clamp at 1")
	}
}

// TestSFQServerSpec wires Theorem 4/5 terms into a hop spec.
func TestSFQServerSpec(t *testing.T) {
	h := SFQServerSpec(1000, 20, 100, 300, 0.5, 0.01, 0.002)
	approx(t, "beta", h.Beta, 300/1000.0+100/1000.0+20/1000.0, 1e-12)
	approx(t, "lambda", h.Lambda, 10, 1e-12)
	if h.Prop != 0.002 || h.B != 0.5 {
		t.Error("spec fields")
	}
}

// TestLeakyBucketE2EDelay checks the A.5 composition.
func TestLeakyBucketE2EDelay(t *testing.T) {
	d := LeakyBucketE2EDelay(1000, 100, 50, 0.5)
	approx(t, "lb delay", d, 1000/100.0-50/100.0+0.5, 1e-12)
}

// TestDelayShiftCondition checks eq (73) on the paper's framing.
func TestDelayShiftCondition(t *testing.T) {
	// |Q| = 20 flows, K = 2 partitions. A small partition (|Q_i| = 4)
	// holding half the link improves; a big one (|Q_i| = 16) on half the
	// link does not.
	if !DelayShiftImproves(4, 20, 2, 500, 1000) {
		t.Error("(4+1)/18 < 0.5 should improve")
	}
	if DelayShiftImproves(16, 20, 2, 500, 1000) {
		t.Error("(16+1)/18 > 0.5 should not improve")
	}
}

// TestEDDSchedulableEdgeCases exercises validation.
func TestEDDSchedulableEdgeCases(t *testing.T) {
	if err := EDDSchedulable(nil, 100, 10); err != nil {
		t.Errorf("empty set: %v", err)
	}
	bad := []EDDFlowSpec{{Rate: -1, Length: 1, Deadline: 1}}
	if err := EDDSchedulable(bad, 100, 10); err == nil {
		t.Error("invalid spec accepted")
	}
	// A single flow consuming the whole link with deadline l/C exactly.
	tight := []EDDFlowSpec{{Rate: 100, Length: 100, Deadline: 1}}
	if err := EDDSchedulable(tight, 100, 10); err != nil {
		t.Errorf("tight but feasible: %v", err)
	}
}

// TestFABounds checks the Appendix B formulas.
func TestFABounds(t *testing.T) {
	approx(t, "Theorem 9", FADelayBound(1000, 5, 100, 10, 200), 5+10+0.2, 1e-12)
	approx(t, "Theorem 8", FAFairnessBound(1000, 100, 10, 100, 10, 200),
		3*(10+10.0)+2*0.2, 1e-12)
}
