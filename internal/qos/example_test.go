package qos_test

import (
	"fmt"

	"repro/internal/qos"
	"repro/internal/server"
	"repro/internal/units"
)

// Theorem 4's single-server delay bound for a packet on a constant-rate
// link (δ = 0): EAT + Σ_{n≠f} l_n^max/C + l/C.
func ExampleSFQDelayBound() {
	fc := server.FCParams{C: units.Mbps(100)}
	var eat qos.EAT
	first := eat.Next(0 /* arrival */, 200 /* bytes */, units.Kbps(64))
	bound := qos.SFQDelayBound(fc, first, 200, 269*200 /* Σ other l_max */)
	fmt.Printf("departs within %.2f ms of its expected arrival\n", units.ToMillis(bound-first))
	// Output:
	// departs within 4.32 ms of its expected arrival
}

// Corollary 1 composes per-hop guarantees into an end-to-end bound.
func ExampleEndToEnd() {
	hop := qos.SFQServerSpec(units.Mbps(1), 0, 500, 1000, 0, 0, 0.002)
	d, btot, _ := qos.EndToEnd([]qos.ServerSpec{hop, hop, hop})
	fmt.Printf("3 hops: %.1f ms, deterministic=%v\n", units.ToMillis(d), btot == 0)
	// Output:
	// 3 hops: 40.0 ms, deterministic=true
}

// Equation 65's recursion: the service an SFQ server guarantees a class
// is itself fluctuation constrained, so bounds nest down a share tree.
func ExampleSFQThroughputFC() {
	link := server.FCParams{C: 1000, Delta: 0}
	class := qos.SFQThroughputFC(link, 400 /* class rate */, 100, 300 /* Σ l_max */)
	sub := qos.SFQThroughputFC(class, 100, 100, 200)
	fmt.Printf("class FC(%.0f, %.0f) -> subclass FC(%.0f, %.0f)\n",
		class.C, class.Delta, sub.C, sub.Delta)
	// Output:
	// class FC(400, 220) -> subclass FC(100, 205)
}
