package qos

import (
	"math"
	"testing"
)

func TestEBBEntryDelayTail(t *testing.T) {
	p := EBBParams{Rho: 100, Sigma: 500, Lambda: 2, Alpha: 0.01}
	d, pr := p.EntryDelayTail(200, 0)
	if d != 2.5 || pr != 1 {
		t.Errorf("γ=0: (%v, %v), want (2.5, 1 clamped)", d, pr)
	}
	d, pr = p.EntryDelayTail(200, 100)
	if d != 3 {
		t.Errorf("delay = %v, want 3", d)
	}
	if math.Abs(pr-2*math.Exp(-1)) > 1e-12 {
		t.Errorf("prob = %v", pr)
	}
	// Served at or below ρ: no bound.
	if d, pr := p.EntryDelayTail(100, 10); !math.IsInf(d, 1) || pr != 1 {
		t.Errorf("under-served flow should have no bound: (%v, %v)", d, pr)
	}
}

func TestLeakyBucketAsEBB(t *testing.T) {
	p := LeakyBucketAsEBB(1000, 100)
	d, pr := p.EntryDelayTail(200, 0)
	if d != 5 {
		t.Errorf("delay = %v, want σ/r = 5", d)
	}
	if pr != 0 {
		t.Errorf("deterministic constraint should have zero tail, got %v", pr)
	}
	// A.5's σ/r bound matches LeakyBucketE2EDelay when composed.
	delay, prob := EBBEndToEnd(p, 200, 100, 0.5, 0, 0, 0, 0)
	want := LeakyBucketE2EDelay(1000, 200, 100, 0.5)
	if math.Abs(delay-want) > 1e-12 || prob != 0 {
		t.Errorf("composition = (%v, %v), want (%v, 0)", delay, prob, want)
	}
}

func TestEBBEndToEndUnionBound(t *testing.T) {
	flow := EBBParams{Rho: 100, Sigma: 500, Lambda: 1, Alpha: 0.01}
	// Network part: B_tot = 0.5, Σ1/λ = 0.1 s.
	delay, prob := EBBEndToEnd(flow, 200, 100, 0.2, 0.5, 0.1, 100, 0.1)
	wantDelay := (500.0+100)/200 - 100.0/200 + 0.2 + 0.1
	if math.Abs(delay-wantDelay) > 1e-12 {
		t.Errorf("delay = %v, want %v", delay, wantDelay)
	}
	wantProb := math.Exp(-1) + 0.5*math.Exp(-1)
	if math.Abs(prob-wantProb) > 1e-12 {
		t.Errorf("prob = %v, want %v", prob, wantProb)
	}
	// Clamped at 1 for tiny γ.
	if _, p := EBBEndToEnd(flow, 200, 100, 0.2, 5, 0.1, 0, 0); p != 1 {
		t.Errorf("prob should clamp at 1, got %v", p)
	}
}
