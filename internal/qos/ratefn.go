package qos

import "sort"

// This file implements the Section 2.3 capacity condition for the
// generalized (variable per-packet rate) SFQ: the rate function of flow f
// at virtual time v is
//
//	R_f(v) = r_f^j  if ∃j: S(p_f^j) <= v < F(p_f^j), else 0
//
// and a server of average rate C has exceeded its capacity at v if
// Σ_n R_n(v) > C. Theorems 4 and 5 require Σ_n R_n(v) <= C for all v.

// TaggedPacket is the (start tag, finish tag, rate) triple of one packet
// as stamped by the scheduler.
type TaggedPacket struct {
	Flow          int
	Start, Finish float64
	Rate          float64
}

// RateAt evaluates Σ_n R_n(v) at virtual time v.
func RateAt(pkts []TaggedPacket, v float64) float64 {
	sum := 0.0
	seen := map[int]bool{}
	for _, p := range pkts {
		if p.Start <= v && v < p.Finish && !seen[p.Flow] {
			// Within a flow, tag intervals [S, F) abut without
			// overlapping (S_{j+1} >= F_j), so at most one packet per
			// flow is active at any v.
			sum += p.Rate
			seen[p.Flow] = true
		}
	}
	return sum
}

// MaxAggregateRate returns the maximum of Σ_n R_n(v) over all v, together
// with a virtual time where the maximum is attained. The aggregate is
// piecewise constant with breakpoints at start tags, so scanning the
// starts is exact.
func MaxAggregateRate(pkts []TaggedPacket) (maxRate, atV float64) {
	if len(pkts) == 0 {
		return 0, 0
	}
	vs := make([]float64, 0, len(pkts))
	for _, p := range pkts {
		vs = append(vs, p.Start)
	}
	sort.Float64s(vs)
	for _, v := range vs {
		if r := RateAt(pkts, v); r > maxRate {
			maxRate = r
			atV = v
		}
	}
	return maxRate, atV
}

// CapacityRespected reports whether Σ_n R_n(v) <= c for all v — the
// precondition of Theorems 4 and 5 for the generalized SFQ.
func CapacityRespected(pkts []TaggedPacket, c float64) bool {
	m, _ := MaxAggregateRate(pkts)
	return m <= c+1e-9
}
