package qos

import "math"

// Appendix A.5 derives end-to-end delay bounds for any flow specification
// by bounding e^j = EAT^1(p^j) + l^j/r − A^1(p^j), the queueing delay of a
// fictitious single server of rate r fed by the flow. For a (σ, ρ) leaky
// bucket this gives the deterministic e^j <= σ/r; for flows with
// Exponentially Bounded Burstiness (Yaron & Sidi [20]) it gives an
// exponential tail, which composes with the Corollary 1 tail.

// EBBParams characterizes an EBB arrival process: for every interval,
// P(A(t1,t2) > ρ·(t2−t1) + σ + γ) <= Λ·e^{−αγ}.
type EBBParams struct {
	Rho    float64 // sustained rate, bytes/s
	Sigma  float64 // burst allowance, bytes
	Lambda float64 // tail prefactor
	Alpha  float64 // tail exponent, 1/bytes
}

// EntryDelayTail bounds the A.5 entry term for an EBB flow served at rate
// r >= Rho: P(e^j > σ/r + γ/r··) — concretely, backlog at a rate-r server
// fed by an EBB process exceeds σ + γ with probability at most
// Λ·e^{−αγ}/(1 − e^{−α·(r−ρ)·τ}) for slotted arrivals; we use the
// standard simpler form P(e > (σ + γ)/r) <= Λ·e^{−αγ} valid when r > ρ
// (the busy period that produces backlog σ + γ requires the arrivals to
// beat the EBB envelope by γ).
func (p EBBParams) EntryDelayTail(r, gamma float64) (delay, prob float64) {
	if r <= p.Rho {
		return math.Inf(1), 1
	}
	if p.Lambda == 0 {
		// Deterministic constraint (e.g. a leaky bucket): zero tail.
		// Guarded explicitly because α may be +Inf and Inf·0 is NaN.
		return (p.Sigma + gamma) / r, 0
	}
	return (p.Sigma + gamma) / r, math.Min(1, p.Lambda*math.Exp(-p.Alpha*gamma))
}

// EBBEndToEnd composes the A.5 entry tail with the Corollary 1 network
// tail: the end-to-end delay exceeds
//
//	(σ + γ_e)/r − l/r + D + γ_n
//
// with probability at most Λ·e^{−α·γ_e} + B_tot·e^{−γ_n/Σ(1/λ)}
// (union bound over the entry and network events).
func EBBEndToEnd(flow EBBParams, r, l, d, btot, lambdaInv, gammaEntry, gammaNet float64) (delay, prob float64) {
	entryDelay, entryProb := flow.EntryDelayTail(r, gammaEntry)
	netProb := EndToEndTail(btot, lambdaInv, gammaNet)
	return entryDelay - l/r + d + gammaNet, math.Min(1, entryProb+netProb)
}

// LeakyBucketAsEBB embeds a deterministic (σ, ρ) constraint as the
// degenerate EBB with a vanishing tail.
func LeakyBucketAsEBB(sigma, rho float64) EBBParams {
	return EBBParams{Rho: rho, Sigma: sigma, Lambda: 0, Alpha: math.Inf(1)}
}
