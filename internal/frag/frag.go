// Package frag provides packet fragmentation and reassembly consumers for
// the simulator. Section 2.4 notes that the Theorem 6 / Corollary 1 proof
// method extends to networks that fragment and reassemble packets; this
// package provides the substrate to demonstrate that: a Fragmenter splits
// frames to an MTU on their way into a hop, and a Reassembler restores the
// original frame (with its original creation time, so end-to-end delay
// measurements span the whole path).
package frag

import (
	"fmt"

	"repro/internal/sim"
)

// header identifies a fragment's place in its original frame.
type header struct {
	origSeq   int64
	origBytes float64
	origMeta  any
	index     int
	total     int
}

// Fragmenter splits data frames larger than MTU into MTU-sized fragments
// (the last fragment carries the remainder). Frames at or under the MTU
// pass through untouched.
type Fragmenter struct {
	MTU float64
	Out sim.Consumer

	seq   int64
	count int64
}

// NewFragmenter returns a fragmenter writing to out.
func NewFragmenter(mtu float64, out sim.Consumer) *Fragmenter {
	if mtu <= 0 || out == nil {
		panic("frag: invalid fragmenter")
	}
	return &Fragmenter{MTU: mtu, Out: out}
}

// Fragments returns the number of fragments emitted so far.
func (f *Fragmenter) Fragments() int64 { return f.count }

// Deliver splits the frame if needed.
func (f *Fragmenter) Deliver(fr *sim.Frame) {
	if fr.Bytes <= f.MTU {
		f.Out.Deliver(fr)
		return
	}
	total := int((fr.Bytes + f.MTU - 1) / f.MTU)
	remaining := fr.Bytes
	for i := 0; i < total; i++ {
		sz := f.MTU
		if remaining < sz {
			sz = remaining
		}
		remaining -= sz
		f.seq++
		f.count++
		f.Out.Deliver(&sim.Frame{
			Flow:    fr.Flow,
			Seq:     f.seq,
			Bytes:   sz,
			Kind:    fr.Kind,
			Created: fr.Created,
			Rate:    fr.Rate,
			Meta: header{
				origSeq:   fr.Seq,
				origBytes: fr.Bytes,
				origMeta:  fr.Meta,
				index:     i,
				total:     total,
			},
		})
	}
}

// Reassembler collects fragments and forwards the restored frame once all
// fragments of an original frame have arrived. Fragments may arrive
// interleaved across originals of the same flow but are assumed not to be
// lost (install an OnDrop hook upstream to detect loss; see Pending).
type Reassembler struct {
	Out sim.Consumer

	pending map[key]*state
}

type key struct {
	flow int
	seq  int64
}

type state struct {
	got     map[int]bool
	created float64
}

// NewReassembler returns a reassembler writing restored frames to out.
func NewReassembler(out sim.Consumer) *Reassembler {
	if out == nil {
		panic("frag: nil consumer")
	}
	return &Reassembler{Out: out, pending: make(map[key]*state)}
}

// Pending returns the number of partially reassembled frames (nonzero at
// the end of a run indicates fragment loss).
func (r *Reassembler) Pending() int { return len(r.pending) }

// Deliver accepts a fragment or passes through an unfragmented frame.
func (r *Reassembler) Deliver(fr *sim.Frame) {
	h, ok := fr.Meta.(header)
	if !ok {
		r.Out.Deliver(fr)
		return
	}
	k := key{flow: fr.Flow, seq: h.origSeq}
	st := r.pending[k]
	if st == nil {
		st = &state{got: make(map[int]bool), created: fr.Created}
		r.pending[k] = st
	}
	if st.got[h.index] {
		panic(fmt.Sprintf("frag: duplicate fragment %d of flow %d frame %d", h.index, fr.Flow, h.origSeq))
	}
	st.got[h.index] = true
	if len(st.got) == h.total {
		delete(r.pending, k)
		r.Out.Deliver(&sim.Frame{
			Flow:    fr.Flow,
			Seq:     h.origSeq,
			Bytes:   h.origBytes,
			Kind:    fr.Kind,
			Created: st.created,
			Meta:    h.origMeta,
		})
	}
}
