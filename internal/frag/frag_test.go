package frag_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/eventq"
	"repro/internal/frag"
	"repro/internal/sched"
	"repro/internal/server"
	"repro/internal/sim"
)

type capture struct{ frames []*sim.Frame }

func (c *capture) Deliver(f *sim.Frame) { c.frames = append(c.frames, f) }

func TestFragmentSizes(t *testing.T) {
	var out capture
	fr := frag.NewFragmenter(100, &out)
	fr.Deliver(&sim.Frame{Flow: 1, Seq: 7, Bytes: 250, Created: 1.5})
	if len(out.frames) != 3 {
		t.Fatalf("fragments = %d, want 3", len(out.frames))
	}
	want := []float64{100, 100, 50}
	total := 0.0
	for i, f := range out.frames {
		if f.Bytes != want[i] {
			t.Errorf("fragment %d = %v bytes, want %v", i, f.Bytes, want[i])
		}
		if f.Created != 1.5 || f.Flow != 1 {
			t.Error("fragment metadata lost")
		}
		total += f.Bytes
	}
	if total != 250 {
		t.Errorf("total = %v", total)
	}
	if fr.Fragments() != 3 {
		t.Errorf("Fragments() = %d", fr.Fragments())
	}
}

func TestSmallFramesPassThrough(t *testing.T) {
	var out capture
	fr := frag.NewFragmenter(100, &out)
	orig := &sim.Frame{Flow: 1, Seq: 1, Bytes: 100}
	fr.Deliver(orig)
	if len(out.frames) != 1 || out.frames[0] != orig {
		t.Error("at-MTU frame should pass through unchanged")
	}
}

func TestReassembleRoundTrip(t *testing.T) {
	var out capture
	re := frag.NewReassembler(&out)
	fr := frag.NewFragmenter(100, re)
	fr.Deliver(&sim.Frame{Flow: 1, Seq: 42, Bytes: 333, Created: 2.5, Meta: "payload"})
	if len(out.frames) != 1 {
		t.Fatalf("reassembled = %d frames", len(out.frames))
	}
	got := out.frames[0]
	if got.Seq != 42 || got.Bytes != 333 || got.Created != 2.5 || got.Meta != "payload" {
		t.Errorf("reassembled frame = %+v", got)
	}
	if re.Pending() != 0 {
		t.Errorf("pending = %d", re.Pending())
	}
}

func TestReassembleInterleaved(t *testing.T) {
	// Two originals of the same flow fragmented then delivered
	// interleaved — both must reassemble.
	var frags capture
	fr := frag.NewFragmenter(100, &frags)
	fr.Deliver(&sim.Frame{Flow: 1, Seq: 1, Bytes: 200})
	fr.Deliver(&sim.Frame{Flow: 1, Seq: 2, Bytes: 200})

	var out capture
	re := frag.NewReassembler(&out)
	order := []int{0, 2, 1, 3} // interleave the two frames' fragments
	for _, i := range order {
		re.Deliver(frags.frames[i])
	}
	if len(out.frames) != 2 {
		t.Fatalf("reassembled = %d", len(out.frames))
	}
	if out.frames[0].Seq != 1 || out.frames[1].Seq != 2 {
		t.Errorf("order = %d, %d", out.frames[0].Seq, out.frames[1].Seq)
	}
}

func TestPendingTracksLoss(t *testing.T) {
	var frags capture
	fr := frag.NewFragmenter(100, &frags)
	fr.Deliver(&sim.Frame{Flow: 1, Seq: 1, Bytes: 300})
	var out capture
	re := frag.NewReassembler(&out)
	re.Deliver(frags.frames[0])
	re.Deliver(frags.frames[2]) // fragment 1 "lost"
	if len(out.frames) != 0 || re.Pending() != 1 {
		t.Errorf("frames=%d pending=%d", len(out.frames), re.Pending())
	}
}

// TestFragmentsOverLink: fragments traverse a real simulated link and
// reassemble with correct end-to-end timing (Created spans the whole
// path).
func TestFragmentsOverLink(t *testing.T) {
	q := &eventq.Queue{}
	var out capture
	re := frag.NewReassembler(&out)
	sch := sched.NewFIFO()
	if err := sch.AddFlow(1, 1); err != nil {
		t.Fatal(err)
	}
	link := sim.NewLink(q, "l", sch, server.NewConstantRate(100), re)
	fr := frag.NewFragmenter(50, link)
	q.At(1, func() { fr.Deliver(&sim.Frame{Flow: 1, Seq: 9, Bytes: 150, Created: q.Now()}) })
	q.Run()
	if len(out.frames) != 1 {
		t.Fatalf("reassembled = %d", len(out.frames))
	}
	// 150 bytes at 100 B/s from t=1: done at 2.5.
	if q.Now() != 2.5 || out.frames[0].Created != 1 {
		t.Errorf("now=%v created=%v", q.Now(), out.frames[0].Created)
	}
}

// Property: fragment + reassemble is the identity on (flow, seq, bytes,
// created) for any MTU and frame size.
func TestQuickRoundTripIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mtu := 1 + rng.Float64()*500
		var out capture
		re := frag.NewReassembler(&out)
		fr := frag.NewFragmenter(mtu, re)
		n := 1 + rng.Intn(20)
		type sent struct {
			seq   int64
			bytes float64
		}
		var sents []sent
		for i := 0; i < n; i++ {
			b := 1 + rng.Float64()*2000
			fr.Deliver(&sim.Frame{Flow: 1, Seq: int64(i), Bytes: b, Created: float64(i)})
			sents = append(sents, sent{int64(i), b})
		}
		if len(out.frames) != n || re.Pending() != 0 {
			return false
		}
		for i, f := range out.frames {
			if f.Seq != sents[i].seq || f.Bytes != sents[i].bytes || f.Created != float64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
