package obs_test

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/eventq"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/server"
	"repro/internal/sim"
)

// buildRun wires one SFQ link with two flows and a deterministic burst of
// arrivals. It returns before running the queue so tests can attach what
// they need first.
func buildRun(t *testing.T) (*eventq.Queue, *sim.Link) {
	t.Helper()
	q := &eventq.Queue{}
	sch := core.New()
	for f, w := range map[int]float64{1: 3, 2: 1} {
		if err := sch.AddFlow(f, w); err != nil {
			t.Fatal(err)
		}
	}
	link := sim.NewLink(q, "l0", sch, server.NewConstantRate(1000), sim.NewSink(q))
	q.At(0, func() {
		for i := 0; i < 20; i++ {
			link.Deliver(&sim.Frame{Flow: 1, Seq: int64(i), Bytes: 100})
			link.Deliver(&sim.Frame{Flow: 2, Seq: int64(i), Bytes: 100})
		}
	})
	return q, link
}

func TestObserverCounters(t *testing.T) {
	q, link := buildRun(t)
	o := obs.Observe(link)
	q.Run()
	s := o.Snapshot()

	if s.Link != "l0" {
		t.Errorf("link = %q", s.Link)
	}
	if s.Delivered != 40 || s.Delivered != link.Delivered() {
		t.Errorf("delivered = %d (link %d), want 40", s.Delivered, link.Delivered())
	}
	// Probe counters must agree with the link's own accounting: every
	// accepted enqueue and every dequeue is probed exactly once.
	if s.ProbeEnqueues != 40 || s.ProbeDequeues != 40 {
		t.Errorf("probe ops = %d/%d, want 40/40", s.ProbeEnqueues, s.ProbeDequeues)
	}
	// SFQ implements VirtualTimer, so every probed op also samples v(t).
	// SFQ's v(t) is the start tag of the packet in service (eq 4); the
	// last packet dequeued is flow 2's 20th (weight 1, 100-byte packets),
	// whose start tag is 19·100 = 1900.
	if s.VTSamples != 80 {
		t.Errorf("vt samples = %d, want 80", s.VTSamples)
	}
	if s.VT != 1900 {
		t.Errorf("vt = %v, want 1900", s.VT)
	}
	if len(s.Flows) != 2 || s.Flows[0].Flow != 1 || s.Flows[1].Flow != 2 {
		t.Fatalf("flows = %+v", s.Flows)
	}
	for _, f := range s.Flows {
		if f.ArrivedPkts != 20 || f.ServedPkts != 20 || f.ServedBytes != 2000 {
			t.Errorf("flow %d: %+v", f.Flow, f)
		}
		if f.Delay.Count != 20 || f.Delay.Min <= 0 || f.Delay.Max > 4.001 {
			t.Errorf("flow %d delay: %+v", f.Flow, f.Delay)
		}
		if f.RateBps <= 0 {
			t.Errorf("flow %d rate = %v, want > 0", f.Flow, f.RateBps)
		}
	}
	// 40 frames arrive at t=0; the first goes straight into service, so
	// the queue peaks at 39 frames / 3900 bytes.
	if s.HWMFrames != 39 || s.HWMBytes != 3900 {
		t.Errorf("hwm = %d frames / %v bytes, want 39/3900", s.HWMFrames, s.HWMBytes)
	}
	if s.TraceLen != 80 || s.TraceDropped != 0 {
		t.Errorf("trace = %d/%d, want 80 events, 0 dropped", s.TraceLen, s.TraceDropped)
	}
}

func TestObserverDrops(t *testing.T) {
	q := &eventq.Queue{}
	sch := sched.NewFIFO()
	if err := sch.AddFlow(1, 1); err != nil {
		t.Fatal(err)
	}
	link := sim.NewLink(q, "l", sch, server.NewConstantRate(1000), sim.NewSink(q))
	link.BufferBytes = 150
	o := obs.Observe(link)
	q.At(0, func() {
		for i := 0; i < 4; i++ {
			link.Deliver(&sim.Frame{Flow: 1, Seq: int64(i), Bytes: 100})
		}
	})
	q.Run()
	s := o.Snapshot()
	// Frame 0 enters service, frame 1 queues (100 ≤ 150), frames 2 and 3
	// would exceed the buffer.
	if s.Dropped != 2 || s.Drops[string(sim.DropBufferFull)] != 2 {
		t.Errorf("drops = %d %v", s.Dropped, s.Drops)
	}
	if s.Flows[0].DroppedPkts != 2 {
		t.Errorf("flow drops = %+v", s.Flows[0])
	}
	// Dropped frames never depart: served counts exclude them and the
	// trace records 2 arrive-less drops.
	if s.Flows[0].ServedPkts != 2 {
		t.Errorf("served = %d, want 2", s.Flows[0].ServedPkts)
	}
	var kinds []string
	o.Trace().Do(func(e obs.Event) { kinds = append(kinds, e.Kind.String()) })
	want := "arrive,arrive,drop,drop,depart,depart"
	if got := strings.Join(kinds, ","); got != want {
		t.Errorf("trace kinds = %s, want %s", got, want)
	}
}

func TestTraceRingBounded(t *testing.T) {
	q, link := buildRun(t)
	o := obs.Observe(link, obs.WithTraceCap(8))
	q.Run()
	if o.Trace().Len() != 8 || o.Trace().Overwritten() != 72 {
		t.Errorf("trace len=%d overwritten=%d, want 8/72", o.Trace().Len(), o.Trace().Overwritten())
	}
	// The retained window is the newest 8 events, still time-ordered.
	prev := math.Inf(-1)
	o.Trace().Do(func(e obs.Event) {
		if e.Time < prev {
			t.Errorf("trace out of order: %v after %v", e.Time, prev)
		}
		prev = e.Time
	})
	s := o.Snapshot()
	if s.TraceLen != 8 || s.TraceDropped != 72 {
		t.Errorf("snapshot trace = %d/%d", s.TraceLen, s.TraceDropped)
	}

	// WithTraceCap(0) disables the ring entirely.
	q2, link2 := buildRun(t)
	o2 := obs.Observe(link2, obs.WithTraceCap(0))
	q2.Run()
	if o2.Trace() != nil {
		t.Error("trace ring present despite WithTraceCap(0)")
	}
}

func TestSnapshotDeterministicJSON(t *testing.T) {
	run := func() []byte {
		q, link := buildRun(t)
		reg := obs.NewRegistry()
		reg.Observe(link)
		q.Run()
		var buf bytes.Buffer
		if err := reg.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Errorf("snapshot JSON differs between identical runs:\n%s\n----\n%s", a, b)
	}
	// And it round-trips as valid JSON.
	var snaps []obs.Snapshot
	if err := json.Unmarshal(a, &snaps); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(snaps) != 1 || snaps[0].Link != "l0" {
		t.Errorf("decoded %+v", snaps)
	}
}

func TestSnapshotIsImmutable(t *testing.T) {
	q, link := buildRun(t)
	o := obs.Observe(link)
	// Snapshot mid-run, then let the run finish: the early snapshot must
	// not change.
	var mid obs.Snapshot
	q.After(0.5, func() { mid = o.Snapshot() })
	q.Run()
	if mid.Delivered == o.Snapshot().Delivered {
		t.Fatal("mid-run snapshot taken after completion?")
	}
	midJSON, _ := json.Marshal(mid)
	q2, link2 := buildRun(t)
	o2 := obs.Observe(link2)
	var mid2 obs.Snapshot
	q2.After(0.5, func() { mid2 = o2.Snapshot() })
	q2.Run()
	mid2JSON, _ := json.Marshal(mid2)
	if !bytes.Equal(midJSON, mid2JSON) {
		t.Errorf("mid-run snapshots differ:\n%s\n----\n%s", midJSON, mid2JSON)
	}
}

func TestRegistry(t *testing.T) {
	q := &eventq.Queue{}
	reg := obs.NewRegistry()
	var links []*sim.Link
	for _, name := range []string{"b", "a"} {
		sch := sched.NewFIFO()
		if err := sch.AddFlow(1, 1); err != nil {
			t.Fatal(err)
		}
		l := sim.NewLink(q, name, sch, server.NewConstantRate(1000), sim.NewSink(q))
		reg.Observe(l)
		links = append(links, l)
	}
	if got := reg.Links(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("links = %v", got)
	}
	if reg.Get("a") == nil || reg.Get("nope") != nil {
		t.Error("Get misbehaves")
	}
	snaps := reg.Snapshot()
	if len(snaps) != 2 || snaps[0].Link != "a" || snaps[1].Link != "b" {
		t.Errorf("snapshots = %+v", snaps)
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate link name did not panic")
		}
	}()
	reg.Observe(links[0])
}

func TestObserveComposesWithMonitor(t *testing.T) {
	// Monitor attached first, observer second (and the reverse) — both
	// see every event.
	for _, obsFirst := range []bool{false, true} {
		q, link := buildRun(t)
		var mon *sim.Monitor
		var o *obs.Observer
		if obsFirst {
			o = obs.Observe(link)
			mon = sim.Attach(link)
		} else {
			mon = sim.Attach(link)
			o = obs.Observe(link)
		}
		q.Run()
		if len(mon.Records) != 40 {
			t.Errorf("obsFirst=%v: monitor records = %d", obsFirst, len(mon.Records))
		}
		if s := o.Snapshot(); s.Delivered != 40 {
			t.Errorf("obsFirst=%v: observer delivered = %d", obsFirst, s.Delivered)
		}
	}
}

func TestPeriodicDumpTerminates(t *testing.T) {
	q, link := buildRun(t)
	reg := obs.NewRegistry()
	reg.Observe(link)
	var buf bytes.Buffer
	obs.PeriodicDump(q, &buf, reg, 1.0)
	q.Run() // must terminate: the dump stops rescheduling once alone
	dumps := strings.Count(buf.String(), "# dump ")
	// The run drains 4000 bytes at 1000 B/s. Dumps fire at t=1..4; the
	// t=4 dump was scheduled before the final same-instant departure, so
	// it still sees a pending event and reschedules once more: the t=5
	// dump fires alone and stops. Without the q.Len() guard this loop
	// would never end.
	if dumps != 5 {
		t.Errorf("dumps = %d, want 5\n%s", dumps, buf.String())
	}
	if q.Now() != 5 {
		t.Errorf("final time = %v, want 5", q.Now())
	}
}

func TestHistogram(t *testing.T) {
	var h obs.Histogram
	for _, v := range []float64{5e-7, 1.5e-6, 3e-6, 1e-3} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if got, want := h.Mean(), (5e-7+1.5e-6+3e-6+1e-3)/4; math.Abs(got-want) > 1e-15 {
		t.Errorf("mean = %v, want %v", got, want)
	}
	if q := h.Quantile(1.0); q < 1e-3 {
		t.Errorf("p100 = %v, want >= 1e-3", q)
	}
	if q := h.Quantile(0.25); q != obs.HistMinDelay {
		t.Errorf("p25 = %v, want %v (first bucket upper bound)", q, obs.HistMinDelay)
	}
	// Bucket bounds tile [0, ∞) without gaps.
	prevHi := 0.0
	for i := 0; i < obs.HistBuckets; i++ {
		lo, hi := obs.HistBucketBounds(i)
		if lo != prevHi || hi <= lo {
			t.Errorf("bucket %d = [%v, %v) after hi %v", i, lo, hi, prevHi)
		}
		prevHi = hi
	}
}
