package obs

import (
	"fmt"
	"io"

	"repro/internal/eventq"
)

// dumpState carries a running PeriodicDump through its events (pointer
// arg keeps the eventq AtCall path allocation-free per firing).
type dumpState struct {
	q        *eventq.Queue
	w        io.Writer
	reg      *Registry
	interval float64
	n        int64
}

// PeriodicDump schedules an expvar-style metrics dump every interval
// seconds of simulated time: each firing writes one indented-JSON
// registry snapshot to w, preceded by a "# dump N t=..." comment line.
//
// The dump reschedules itself only while other events remain pending, so
// q.Run() still terminates: the last dump fires at the first interval
// boundary at or after the simulation's final event. (A dump alone in the
// queue would otherwise self-perpetuate forever.)
func PeriodicDump(q *eventq.Queue, w io.Writer, reg *Registry, interval float64) {
	if interval <= 0 {
		panic("obs: PeriodicDump requires a positive interval")
	}
	d := &dumpState{q: q, w: w, reg: reg, interval: interval}
	q.AfterCall(interval, dumpFire, d)
}

func dumpFire(arg any) {
	d := arg.(*dumpState)
	d.n++
	fmt.Fprintf(d.w, "# dump %d t=%.9f\n", d.n, d.q.Now())
	if err := d.reg.WriteJSON(d.w); err != nil {
		fmt.Fprintf(d.w, "# dump error: %v\n", err)
		return
	}
	if d.q.Len() > 0 {
		d.q.AfterCall(d.interval, dumpFire, d)
	}
}
