package obs_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/eventq"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/sim"
)

// steadyLink wires an SFQ link whose frames can be recycled by the caller:
// one flow, constant-rate server, zero propagation, so delivering a frame
// and stepping the queue once returns that same frame to the sink.
func steadyLink(t *testing.T) (*eventq.Queue, *sim.Link) {
	t.Helper()
	q := &eventq.Queue{}
	sch := core.New()
	if err := sch.AddFlow(1, 1); err != nil {
		t.Fatal(err)
	}
	return q, sim.NewLink(q, "alloc", sch, server.NewConstantRate(1e6), sim.NewSink(q))
}

// steadyState runs one deliver/transmit cycle with a single reused frame.
func steadyState(q *eventq.Queue, l *sim.Link, f *sim.Frame) {
	l.Deliver(f)
	q.Step() // fire the transmission-complete event
}

// TestLinkSteadyStateZeroAlloc pins the PR 3 guarantee the observability
// layer must not disturb: a link with no probe and no hooks allocates
// nothing per frame in steady state (packet pool, event-node free list,
// typed heaps).
func TestLinkSteadyStateZeroAlloc(t *testing.T) {
	q, l := steadyLink(t)
	f := &sim.Frame{Flow: 1, Bytes: 500}
	for i := 0; i < 64; i++ { // warm the pools and maps
		steadyState(q, l, f)
	}
	if !l.PoolActive() {
		t.Fatal("packet pool inactive on SFQ link")
	}
	allocs := testing.AllocsPerRun(256, func() { steadyState(q, l, f) })
	if allocs != 0 {
		t.Errorf("unprobed link: %.1f allocs per frame, want 0", allocs)
	}
}

// TestObservedLinkSteadyStateZeroAlloc checks the attached-observer path
// stays off the allocator too once warm: counters and gauges are in-place,
// the trace ring overwrites its preallocated buffer, and the arrival map
// reuses cells freed by departures. Attaching observability to a long run
// must cost CPU only, never growing memory.
func TestObservedLinkSteadyStateZeroAlloc(t *testing.T) {
	q, l := steadyLink(t)
	o := obs.Observe(l, obs.WithTraceCap(128))
	f := &sim.Frame{Flow: 1, Bytes: 500}
	for i := 0; i < 256; i++ { // warm pools, flow stats, and fill the ring
		steadyState(q, l, f)
	}
	if !l.PoolActive() {
		t.Fatal("packet pool inactive with observer attached")
	}
	allocs := testing.AllocsPerRun(256, func() { steadyState(q, l, f) })
	if allocs != 0 {
		t.Errorf("observed link: %.1f allocs per frame, want 0", allocs)
	}
	if o.Trace().Overwritten() == 0 {
		t.Error("trace ring never wrapped; steady state not reached")
	}
}
