package obs

import (
	"math"
	"sort"

	"repro/internal/sim"
)

// Delay histogram layout: fixed log-spaced buckets shared by every flow
// histogram, so snapshots from different links and runs line up
// column-for-column. Bucket 0 catches [0, HistMinDelay); bucket i covers
// [HistMinDelay·2^(i−1), HistMinDelay·2^i); the last bucket is open-ended.
// 1 µs · 2^38 ≈ 76 h, far past any simulated horizon, so the overflow
// bucket stays empty in practice.
const (
	// HistBuckets is the fixed bucket count of every delay histogram.
	HistBuckets = 40
	// HistMinDelay is the upper bound of the first bucket, in seconds.
	HistMinDelay = 1e-6
)

// Histogram is a fixed-size log-spaced histogram. The zero value is an
// empty histogram; Observe never allocates.
type Histogram struct {
	counts   [HistBuckets]int64
	n        int64
	sum      float64
	min, max float64
}

// Observe records one value (negative values clamp into bucket 0).
func (h *Histogram) Observe(v float64) {
	h.counts[histBucket(v)]++
	h.n++
	h.sum += v
	if h.n == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// histBucket maps a value to its bucket index. Powers of two scale
// exactly in float64, so boundary values land deterministically.
func histBucket(v float64) int {
	if v < HistMinDelay {
		return 0
	}
	i := int(math.Log2(v/HistMinDelay)) + 1
	if i >= HistBuckets {
		return HistBuckets - 1
	}
	return i
}

// HistBucketBounds returns bucket i's half-open interval [lo, hi).
// Values at or above the last bucket's hi clamp into it (kept finite —
// rather than +Inf — so snapshots stay JSON-encodable).
func HistBucketBounds(i int) (lo, hi float64) {
	if i == 0 {
		lo = 0
	} else {
		lo = HistMinDelay * math.Pow(2, float64(i-1))
	}
	hi = HistMinDelay * math.Pow(2, float64(i))
	return lo, hi
}

// Count returns the number of observed values.
func (h *Histogram) Count() int64 { return h.n }

// Mean returns the arithmetic mean of the observed values (0 if empty).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Quantile returns an upper bound for the q-quantile (0 ≤ q ≤ 1): the
// upper edge of the bucket holding the ⌈q·n⌉-th value. Resolution is one
// octave — enough for "p99 delay grew 8×" dashboards, not for
// microsecond-level comparisons (use the exact stats.Sample for those).
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := range h.counts {
		seen += h.counts[i]
		if seen >= rank {
			if i == HistBuckets-1 {
				return h.max // open-ended in effect: report the exact max
			}
			_, hi := HistBucketBounds(i)
			return hi
		}
	}
	return h.max
}

// snapshot returns the histogram's immutable export form.
func (h *Histogram) snapshot() HistSnapshot {
	s := HistSnapshot{Count: h.n, Sum: h.sum}
	if h.n > 0 {
		s.Min, s.Max = h.min, h.max
	}
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		lo, hi := HistBucketBounds(i)
		s.Buckets = append(s.Buckets, HistBucket{Lo: lo, Hi: hi, N: c})
	}
	return s
}

// HistBucket is one non-empty bucket of an exported histogram.
type HistBucket struct {
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
	N  int64   `json:"n"`
}

// HistSnapshot is the immutable export form of a Histogram: only
// non-empty buckets, plus exact count/sum/min/max.
type HistSnapshot struct {
	Count   int64        `json:"count"`
	Sum     float64      `json:"sum"`
	Min     float64      `json:"min"`
	Max     float64      `json:"max"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// rateEWMA is the exponential rate estimator of Stoica's CSFQ (also used
// by the paper's measurement-based admission control literature):
//
//	r_new = (1 − e^(−T/K)) · l/T + e^(−T/K) · r_old
//
// where l is the bytes served since the previous estimate, T the gap
// between them, and K the averaging window. Unlike a per-interval sample
// mean, the exponential form is insensitive to the packet interarrival
// pattern within the window. Same-instant departures accumulate into l
// and fold at the next positive gap, so the estimator never divides by a
// zero interval.
type rateEWMA struct {
	k       float64 // averaging window K, seconds
	rate    float64 // bytes/second
	lastT   float64
	acc     float64 // bytes awaiting a positive time gap
	started bool
}

func (e *rateEWMA) observe(t, bytes float64) {
	if !e.started {
		e.started = true
		e.lastT = t
		e.acc = bytes
		return
	}
	e.acc += bytes
	dt := t - e.lastT
	if dt <= 0 {
		return
	}
	w := math.Exp(-dt / e.k)
	e.rate = (1-w)*(e.acc/dt) + w*e.rate
	e.lastT = t
	e.acc = 0
}

// flowStats is the mutable per-flow accumulator behind FlowSnapshot.
type flowStats struct {
	arrivedPkts  int64
	arrivedBytes float64
	servedPkts   int64
	servedBytes  float64
	drops        map[sim.DropCause]int64
	rate         rateEWMA
	delay        Histogram
	hwmBytes     float64 // high-water mark of this flow's queued bytes
}

// FlowSnapshot is the immutable per-flow metrics export.
type FlowSnapshot struct {
	Flow         int              `json:"flow"`
	ArrivedPkts  int64            `json:"arrived_pkts"`
	ArrivedBytes float64          `json:"arrived_bytes"`
	ServedPkts   int64            `json:"served_pkts"`
	ServedBytes  float64          `json:"served_bytes"`
	DroppedPkts  int64            `json:"dropped_pkts"`
	Drops        map[string]int64 `json:"drops,omitempty"` // by DropCause
	RateBps      float64          `json:"rate_Bps"`        // EWMA throughput, bytes/s
	HWMBytes     float64          `json:"hwm_bytes"`       // peak queued bytes
	Delay        HistSnapshot     `json:"delay"`           // link arrival → end of tx, seconds
}

// Snapshot is the immutable per-link metrics export: every counter and
// gauge an Observer maintains, deep-copied at a single instant. Flows are
// sorted by id and drop maps are keyed by cause string, so the
// encoding/json output is byte-deterministic for a deterministic run.
type Snapshot struct {
	Link      string  `json:"link"`
	Now       float64 `json:"now"` // time of the last observed event
	Delivered int64   `json:"delivered"`
	Dropped   int64   `json:"dropped"`

	Drops map[string]int64 `json:"drops,omitempty"` // by DropCause

	// Queue-depth high-water marks, sampled at each accepted enqueue.
	HWMFrames int     `json:"hwm_frames"`
	HWMBytes  float64 `json:"hwm_bytes"`

	// Virtual-time gauge (schedulers implementing sched.VirtualTimer).
	VT        float64 `json:"vt"`
	VTSamples int64   `json:"vt_samples"`

	// Probe-side operation counters — equal the link's own counters in a
	// correctly wired run, which the tests assert.
	ProbeEnqueues int64 `json:"probe_enqueues"`
	ProbeDequeues int64 `json:"probe_dequeues"`

	// Trace-ring accounting: events retained and displaced (the dump is a
	// window, not a history, once TraceDropped > 0).
	TraceLen     int   `json:"trace_len"`
	TraceDropped int64 `json:"trace_dropped"`

	Flows []FlowSnapshot `json:"flows"`
}

// snapshotFlows builds the sorted immutable flow list.
func snapshotFlows(flows map[int]*flowStats) []FlowSnapshot {
	ids := make([]int, 0, len(flows))
	for id := range flows {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]FlowSnapshot, 0, len(ids))
	for _, id := range ids {
		fs := flows[id]
		snap := FlowSnapshot{
			Flow:         id,
			ArrivedPkts:  fs.arrivedPkts,
			ArrivedBytes: fs.arrivedBytes,
			ServedPkts:   fs.servedPkts,
			ServedBytes:  fs.servedBytes,
			RateBps:      fs.rate.rate,
			HWMBytes:     fs.hwmBytes,
			Delay:        fs.delay.snapshot(),
		}
		for c, n := range fs.drops {
			if snap.Drops == nil {
				snap.Drops = make(map[string]int64, len(fs.drops))
			}
			snap.Drops[string(c)] = n
			snap.DroppedPkts += n
		}
		out = append(out, snap)
	}
	return out
}
