package obs

import (
	"repro/internal/ring"
	"repro/internal/sim"
)

// EventKind tags a trace-ring record.
type EventKind uint8

// Trace event kinds.
const (
	// EvArrive: the link accepted a frame into its queue.
	EvArrive EventKind = iota
	// EvDepart: a frame finished transmission.
	EvDepart
	// EvDrop: a frame was dropped, with Cause set.
	EvDrop
)

// String returns the CSV/JSON token of the kind.
func (k EventKind) String() string {
	switch k {
	case EvArrive:
		return "arrive"
	case EvDepart:
		return "depart"
	case EvDrop:
		return "drop"
	}
	return "unknown"
}

// Event is one trace-ring record. Values are copied out of the frame at
// hook time — the ring never retains frame or packet pointers, so it
// composes with the link's packet pooling.
type Event struct {
	Time  float64 // event time (for departs: end of transmission)
	Kind  EventKind
	Flow  int
	Seq   int64
	Bytes float64
	Cause sim.DropCause // drops only, "" otherwise
}

// TraceRing is a fixed-capacity ring of link events: the bounded
// replacement for accumulating per-packet slices. It keeps the newest
// Cap() events and counts what it displaced, so a live dump is explicit
// about being a window, not a full history.
type TraceRing = ring.Ring[Event]

// DefaultTraceCap is the trace-ring capacity used when an Observer is
// built without WithTraceCap: 4096 events ≈ the tail of a run, at a fixed
// ~200 KiB.
const DefaultTraceCap = 4096

// NewTraceRing returns an empty trace ring holding up to capacity events.
func NewTraceRing(capacity int) *TraceRing { return ring.New[Event](capacity) }
