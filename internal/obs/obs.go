// Package obs is the simulator's observability layer: live per-link and
// per-flow metrics, a bounded trace ring of link events, and scheduler
// probes exposing tag/virtual-time evolution — all zero-overhead when not
// attached. A link with no Observer runs exactly the PR 3 hot path (one
// nil-probe branch per operation, zero allocations); an attached Observer
// only observes, so probed runs replay bit-identically to unprobed ones.
//
// The layer has three attachment points, matching the three kinds of
// signal a scheduler run produces:
//
//   - sched.Probe (installed via Link.SetProbe): the scheduler-side view —
//     per-operation counters and the system virtual time v(t) for
//     disciplines that implement sched.VirtualTimer.
//   - Link hooks (OnEnqueue/OnDepart/OnDrop, chained like sim.Monitor):
//     the link-side view — arrivals, departures, drops, queue depths.
//   - sim.Chain wrappers: the consumer-side view, for counting what
//     actually reached a sink through fault injectors.
//
// Unlike sim.Monitor — the replay-exact measurement instrument behind the
// paper's figures, which keeps whatever its consumers need — obs is the
// operational instrument: every structure here is fixed-size (counters,
// gauges, log-spaced histograms, an overwrite ring), so memory does not
// grow with run length.
package obs

import (
	"encoding/json"
	"io"
	"sort"

	"repro/internal/sched"
	"repro/internal/sim"
)

// DefaultRateWindow is the EWMA averaging window K (seconds) used for
// per-flow throughput estimates unless WithRateWindow overrides it.
const DefaultRateWindow = 0.1

// Option configures an Observer at attach time.
type Option func(*Observer)

// WithTraceCap sets the event trace-ring capacity; n <= 0 disables the
// ring entirely (metrics only).
func WithTraceCap(n int) Option {
	return func(o *Observer) { o.traceCap = n }
}

// WithRateWindow sets the throughput EWMA averaging window K in seconds.
func WithRateWindow(k float64) Option {
	return func(o *Observer) {
		if k > 0 {
			o.rateWindow = k
		}
	}
}

// Observer instruments one link: it is the sched.Probe installed on the
// link and the owner of the link-hook chain entries, the per-flow metric
// accumulators, and the trace ring. Create one with Observe; read it with
// Snapshot or Trace.
type Observer struct {
	link       *sim.Link
	traceCap   int
	rateWindow float64

	flows   map[int]*flowStats
	arrival map[*sim.Frame]float64 // bounded by frames in flight at the link

	delivered int64
	dropped   int64
	drops     map[sim.DropCause]int64

	hwmFrames int
	hwmBytes  float64

	vt        float64
	vtSamples int64

	probeEnq int64
	probeDeq int64

	now   float64 // time of the last observed event
	trace *TraceRing
}

// Observe attaches a new Observer to l: it installs the scheduler probe
// (replacing any previous one) and chains onto the link's
// OnEnqueue/OnDepart/OnDrop hooks, composing with an already-attached
// sim.Monitor in either order.
func Observe(l *sim.Link, opts ...Option) *Observer {
	o := &Observer{
		link:       l,
		traceCap:   DefaultTraceCap,
		rateWindow: DefaultRateWindow,
		flows:      make(map[int]*flowStats),
		arrival:    make(map[*sim.Frame]float64),
		drops:      make(map[sim.DropCause]int64),
	}
	for _, opt := range opts {
		opt(o)
	}
	if o.traceCap > 0 {
		o.trace = NewTraceRing(o.traceCap)
	}
	l.SetProbe(o)
	prevEnq, prevDep, prevDrop := l.OnEnqueue, l.OnDepart, l.OnDrop
	l.OnEnqueue = func(f *sim.Frame, now float64) {
		o.onEnqueue(f, now)
		if prevEnq != nil {
			prevEnq(f, now)
		}
	}
	l.OnDepart = func(f *sim.Frame, start, end float64) {
		o.onDepart(f, start, end)
		if prevDep != nil {
			prevDep(f, start, end)
		}
	}
	l.OnDrop = func(f *sim.Frame, cause sim.DropCause) {
		o.onDrop(f, cause)
		if prevDrop != nil {
			prevDrop(f, cause)
		}
	}
	return o
}

// flow returns (allocating on first use) the stats of one flow.
func (o *Observer) flow(id int) *flowStats {
	fs, ok := o.flows[id]
	if !ok {
		fs = &flowStats{
			drops: make(map[sim.DropCause]int64),
			rate:  rateEWMA{k: o.rateWindow},
		}
		o.flows[id] = fs
	}
	return fs
}

// OnEnqueue implements sched.Probe.
func (o *Observer) OnEnqueue(now float64, p *sched.Packet) { o.probeEnq++ }

// OnDequeue implements sched.Probe.
func (o *Observer) OnDequeue(now float64, p *sched.Packet) { o.probeDeq++ }

// OnVirtualTime implements sched.Probe: a last-value gauge of v(t).
func (o *Observer) OnVirtualTime(now, v float64) {
	o.vt = v
	o.vtSamples++
}

func (o *Observer) onEnqueue(f *sim.Frame, now float64) {
	o.now = now
	fs := o.flow(f.Flow)
	fs.arrivedPkts++
	fs.arrivedBytes += f.Bytes
	o.arrival[f] = now
	if qb := o.link.FlowQueuedBytes(f.Flow); qb > fs.hwmBytes {
		fs.hwmBytes = qb
	}
	if qf := o.link.QueuedFrames(); qf > o.hwmFrames {
		o.hwmFrames = qf
	}
	if qb := o.link.QueuedBytes(); qb > o.hwmBytes {
		o.hwmBytes = qb
	}
	if o.trace != nil {
		o.trace.Push(Event{Time: now, Kind: EvArrive, Flow: f.Flow, Seq: f.Seq, Bytes: f.Bytes})
	}
}

func (o *Observer) onDepart(f *sim.Frame, start, end float64) {
	o.now = end
	o.delivered++
	fs := o.flow(f.Flow)
	fs.servedPkts++
	fs.servedBytes += f.Bytes
	fs.rate.observe(end, f.Bytes)
	if arr, ok := o.arrival[f]; ok {
		fs.delay.Observe(end - arr)
		delete(o.arrival, f)
	}
	if o.trace != nil {
		o.trace.Push(Event{Time: end, Kind: EvDepart, Flow: f.Flow, Seq: f.Seq, Bytes: f.Bytes})
	}
}

func (o *Observer) onDrop(f *sim.Frame, cause sim.DropCause) {
	now := o.link.Now()
	o.now = now
	o.dropped++
	o.drops[cause]++
	fs := o.flow(f.Flow)
	fs.drops[cause]++
	delete(o.arrival, f) // the frame will never depart
	if o.trace != nil {
		o.trace.Push(Event{Time: now, Kind: EvDrop, Flow: f.Flow, Seq: f.Seq, Bytes: f.Bytes, Cause: cause})
	}
}

// Trace returns the observer's event ring (nil if disabled).
func (o *Observer) Trace() *TraceRing { return o.trace }

// Snapshot deep-copies every counter and gauge at this instant. The
// result shares no state with the observer, and its JSON encoding is
// byte-deterministic for a deterministic run (flows sorted, map keys
// sorted by encoding/json).
func (o *Observer) Snapshot() Snapshot {
	s := Snapshot{
		Link:          o.link.Name,
		Now:           o.now,
		Delivered:     o.delivered,
		Dropped:       o.dropped,
		HWMFrames:     o.hwmFrames,
		HWMBytes:      o.hwmBytes,
		VT:            o.vt,
		VTSamples:     o.vtSamples,
		ProbeEnqueues: o.probeEnq,
		ProbeDequeues: o.probeDeq,
		Flows:         snapshotFlows(o.flows),
	}
	for c, n := range o.drops {
		if s.Drops == nil {
			s.Drops = make(map[string]int64, len(o.drops))
		}
		s.Drops[string(c)] = n
	}
	if o.trace != nil {
		s.TraceLen = o.trace.Len()
		s.TraceDropped = o.trace.Overwritten()
	}
	return s
}

// Registry collects the Observers of a simulation, keyed by link name —
// the one handle a command needs to instrument a topology and dump
// everything at the end. Not safe for concurrent use; a simulation is
// single-threaded and parallel harnesses (conformance RunMatrix) give
// each shard its own registry.
type Registry struct {
	obs map[string]*Observer
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{obs: make(map[string]*Observer)} }

// Observe attaches an Observer to l and registers it under the link's
// name. Two links with the same name in one registry is a wiring bug and
// panics.
func (r *Registry) Observe(l *sim.Link, opts ...Option) *Observer {
	if _, dup := r.obs[l.Name]; dup {
		panic("obs: duplicate link name in registry: " + l.Name)
	}
	o := Observe(l, opts...)
	r.obs[l.Name] = o
	return o
}

// Get returns the observer of a link by name (nil if absent).
func (r *Registry) Get(name string) *Observer { return r.obs[name] }

// Links returns the registered link names, sorted.
func (r *Registry) Links() []string {
	names := make([]string, 0, len(r.obs))
	for n := range r.obs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Snapshot snapshots every registered observer, sorted by link name.
func (r *Registry) Snapshot() []Snapshot {
	out := make([]Snapshot, 0, len(r.obs))
	for _, n := range r.Links() {
		out = append(out, r.obs[n].Snapshot())
	}
	return out
}

// WriteJSON writes the registry snapshot as indented JSON — the
// expvar-style dump format of sfqsim --metrics and PeriodicDump.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
