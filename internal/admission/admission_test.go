package admission_test

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/admission"
	"repro/internal/qos"
	"repro/internal/server"
)

func newC(t *testing.T, c, delta float64) *admission.Controller {
	t.Helper()
	return admission.NewController(server.FCParams{C: c, Delta: delta})
}

func TestAdmitWithinCapacity(t *testing.T) {
	c := newC(t, 1000, 0)
	if err := c.Admit(admission.Request{Flow: 1, Rate: 600, LMax: 100}); err != nil {
		t.Fatal(err)
	}
	if err := c.Admit(admission.Request{Flow: 2, Rate: 400, LMax: 100}); err != nil {
		t.Fatal(err)
	}
	if c.Reserved() != 1000 || c.Available() != 0 {
		t.Errorf("reserved=%v available=%v", c.Reserved(), c.Available())
	}
	err := c.Admit(admission.Request{Flow: 3, Rate: 1, LMax: 100})
	if !errors.Is(err, admission.ErrOverCommitted) {
		t.Errorf("over-commit error = %v", err)
	}
}

func TestReleaseRestoresCapacity(t *testing.T) {
	c := newC(t, 1000, 0)
	if err := c.Admit(admission.Request{Flow: 1, Rate: 1000, LMax: 100}); err != nil {
		t.Fatal(err)
	}
	if err := c.Release(1); err != nil {
		t.Fatal(err)
	}
	if c.Reserved() != 0 {
		t.Errorf("reserved = %v after release", c.Reserved())
	}
	if err := c.Release(1); !errors.Is(err, admission.ErrUnknownFlow) {
		t.Errorf("double release = %v", err)
	}
	if err := c.Admit(admission.Request{Flow: 2, Rate: 1000, LMax: 100}); err != nil {
		t.Errorf("re-admission after release: %v", err)
	}
}

func TestDelayRequirement(t *testing.T) {
	c := newC(t, 1000, 0)
	// Flow 1 demands the Theorem-4 term stay under 0.35 s. Alone:
	// l/C = 0.1 s — fine.
	if err := c.Admit(admission.Request{Flow: 1, Rate: 100, LMax: 100, MaxDelay: 0.35}); err != nil {
		t.Fatal(err)
	}
	// Flow 2 with a 200 B l_max pushes flow 1's term to 0.3 s — still ok.
	if err := c.Admit(admission.Request{Flow: 2, Rate: 100, LMax: 200}); err != nil {
		t.Fatal(err)
	}
	d, err := c.DelayBound(1)
	if err != nil || math.Abs(d-0.3) > 1e-12 {
		t.Fatalf("DelayBound(1) = %v, %v", d, err)
	}
	// Flow 3 would push flow 1's term to 0.4 s > 0.35: must be refused
	// even though the *rate* fits — admission protects earlier promises.
	err = c.Admit(admission.Request{Flow: 3, Rate: 100, LMax: 100})
	if !errors.Is(err, admission.ErrDelayUnmet) {
		t.Errorf("delay-breaking admission = %v", err)
	}
	// A zero-l... smaller packet flow still fits.
	if err := c.Admit(admission.Request{Flow: 4, Rate: 100, LMax: 50}); err != nil {
		t.Errorf("small flow refused: %v", err)
	}
}

func TestOwnDelayRequirementChecked(t *testing.T) {
	c := newC(t, 1000, 0)
	if err := c.Admit(admission.Request{Flow: 1, Rate: 100, LMax: 900}); err != nil {
		t.Fatal(err)
	}
	// The candidate's own requirement fails: Σ_{n≠f}/C = 0.9 > 0.5.
	err := c.Admit(admission.Request{Flow: 2, Rate: 100, LMax: 100, MaxDelay: 0.5})
	if !errors.Is(err, admission.ErrDelayUnmet) {
		t.Errorf("self delay check = %v", err)
	}
}

func TestValidation(t *testing.T) {
	c := newC(t, 1000, 0)
	if err := c.Admit(admission.Request{Flow: 1, Rate: 0, LMax: 1}); err == nil {
		t.Error("zero rate admitted")
	}
	if err := c.Admit(admission.Request{Flow: 1, Rate: 1, LMax: 0}); err == nil {
		t.Error("zero lmax admitted")
	}
	if err := c.Admit(admission.Request{Flow: 1, Rate: 1, LMax: 1}); err != nil {
		t.Fatal(err)
	}
	if err := c.Admit(admission.Request{Flow: 1, Rate: 1, LMax: 1}); err == nil {
		t.Error("duplicate admitted")
	}
	if _, err := c.DelayBound(99); !errors.Is(err, admission.ErrUnknownFlow) {
		t.Error("unknown DelayBound")
	}
	if _, err := c.ThroughputFC(99); !errors.Is(err, admission.ErrUnknownFlow) {
		t.Error("unknown ThroughputFC")
	}
}

func TestHierarchicalAdmission(t *testing.T) {
	// Admit a class at the link, derive its FC, admit sub-flows against
	// the class's virtual server — the eq (65) recursion as admission.
	link := newC(t, 1000, 50)
	if err := link.Admit(admission.Request{Flow: 1, Rate: 400, LMax: 100}); err != nil {
		t.Fatal(err)
	}
	classFC, err := link.ThroughputFC(1)
	if err != nil {
		t.Fatal(err)
	}
	if classFC.C != 400 {
		t.Fatalf("class rate = %v", classFC.C)
	}
	class := admission.NewController(classFC)
	if err := class.Admit(admission.Request{Flow: 10, Rate: 300, LMax: 100}); err != nil {
		t.Fatal(err)
	}
	if err := class.Admit(admission.Request{Flow: 11, Rate: 200, LMax: 100}); !errors.Is(err, admission.ErrOverCommitted) {
		t.Errorf("sub-class over-commit = %v", err)
	}
	// The sub-flow's delay bound includes the class's burst term.
	d, err := class.DelayBound(10)
	if err != nil {
		t.Fatal(err)
	}
	if d <= classFC.Delta/classFC.C {
		t.Errorf("nested delay bound %v should include the class burst %v", d, classFC.Delta/classFC.C)
	}
}

func TestAdmitEDD(t *testing.T) {
	c := newC(t, 1000, 0)
	existing := []qos.EDDFlowSpec{{Rate: 400, Length: 100, Deadline: 0.5}}
	ok := qos.EDDFlowSpec{Rate: 300, Length: 100, Deadline: 0.5}
	if err := c.AdmitEDD(existing, ok, 10); err != nil {
		t.Errorf("feasible EDD refused: %v", err)
	}
	bad := qos.EDDFlowSpec{Rate: 900, Length: 100, Deadline: 0.01}
	if err := c.AdmitEDD(existing, bad, 10); err == nil {
		t.Error("infeasible EDD admitted")
	}
}

// Property: any sequence of admits/releases keeps 0 <= Reserved <= C and
// Admit never succeeds past capacity.
func TestQuickReservationInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := admission.NewController(server.FCParams{C: 1000})
		admitted := map[int]float64{}
		id := 0
		for i := 0; i < 100; i++ {
			if rng.Intn(2) == 0 {
				id++
				r := rng.Float64() * 400
				if r == 0 {
					continue
				}
				err := c.Admit(admission.Request{Flow: id, Rate: r, LMax: 100})
				if err == nil {
					admitted[id] = r
				} else if c.Reserved()+r <= 1000-1e-9 {
					return false // refused despite fitting
				}
			} else if len(admitted) > 0 {
				for fl := range admitted {
					if c.Release(fl) != nil {
						return false
					}
					delete(admitted, fl)
					break
				}
			}
			sum := 0.0
			for _, r := range admitted {
				sum += r
			}
			if diff := c.Reserved() - sum; diff > 1e-6 || diff < -1e-6 {
				return false
			}
			if c.Reserved() > 1000+1e-9 || c.Reserved() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
