// Package admission implements the admission-control procedures the
// paper's guarantees presuppose: Theorems 2–5 require Σ_n r_n <= C (or
// Σ_n R_n(v) <= C for variable-rate allocation), Theorem 7 requires the
// Delay EDD schedulability condition (eq 67), and hierarchical link
// sharing requires the same discipline at every class of the tree.
//
// A Controller tracks reservations against a capacity and refuses
// over-commitment; it also derives the SFQ delay and throughput bounds a
// newly admitted flow would receive, so callers can reject flows whose
// requirements cannot be met.
package admission

import (
	"errors"
	"fmt"

	"repro/internal/qos"
	"repro/internal/server"
)

// ErrOverCommitted is returned when a reservation would exceed capacity.
var ErrOverCommitted = errors.New("admission: capacity exceeded")

// ErrUnknownFlow is returned when releasing a flow that was not admitted.
var ErrUnknownFlow = errors.New("admission: unknown flow")

// ErrDelayUnmet is returned when the requested delay bound cannot be
// guaranteed.
var ErrDelayUnmet = errors.New("admission: delay requirement unmet")

// Request describes a flow asking for admission.
type Request struct {
	Flow int
	Rate float64 // reserved rate, bytes/s
	LMax float64 // maximum packet length, bytes

	// MaxDelay, if positive, is the largest acceptable Theorem-4 delay
	// term (excluding EAT): Σ_{n≠f} l_n^max/C + l^max/C + δ/C.
	MaxDelay float64
}

// Controller admits flows against one SFQ server.
type Controller struct {
	fc    server.FCParams
	flows map[int]Request
	used  float64
}

// NewController returns a controller for an FC server (δ = 0 gives a
// constant-rate link).
func NewController(fc server.FCParams) *Controller {
	if fc.C <= 0 {
		panic("admission: capacity must be positive")
	}
	return &Controller{fc: fc, flows: make(map[int]Request)}
}

// Reserved returns the sum of admitted rates.
func (c *Controller) Reserved() float64 { return c.used }

// Available returns the unreserved capacity.
func (c *Controller) Available() float64 { return c.fc.C - c.used }

// sumLmax returns Σ l_n^max over admitted flows plus the candidate.
func (c *Controller) sumLmax(extra float64) float64 {
	s := extra
	for _, r := range c.flows {
		s += r.LMax
	}
	return s
}

// Admit checks Σ r <= C and, if requested, the flow's delay requirement —
// including the effect of the new flow's own l^max on flows admitted
// earlier (admitting a flow must not break promises already made).
func (c *Controller) Admit(req Request) error {
	if req.Rate <= 0 || req.LMax <= 0 {
		return fmt.Errorf("admission: invalid request %+v", req)
	}
	if _, dup := c.flows[req.Flow]; dup {
		return fmt.Errorf("admission: flow %d already admitted", req.Flow)
	}
	if c.used+req.Rate > c.fc.C+1e-9 {
		return fmt.Errorf("%w: %v + %v > %v", ErrOverCommitted, c.used, req.Rate, c.fc.C)
	}
	// Delay term for an arbitrary flow g if req were admitted:
	// Σ_{n≠g} l_n^max/C + l_g^max/C + δ/C.
	total := c.sumLmax(req.LMax)
	check := func(g Request) error {
		if g.MaxDelay <= 0 {
			return nil
		}
		d := qos.SFQDelayBound(c.fc, 0, g.LMax, total-g.LMax)
		if d > g.MaxDelay+1e-12 {
			return fmt.Errorf("%w: flow %d would see %v > %v", ErrDelayUnmet, g.Flow, d, g.MaxDelay)
		}
		return nil
	}
	if err := check(req); err != nil {
		return err
	}
	for _, g := range c.flows {
		if err := check(g); err != nil {
			return err
		}
	}
	c.flows[req.Flow] = req
	c.used += req.Rate
	return nil
}

// Release frees a reservation.
func (c *Controller) Release(flow int) error {
	r, ok := c.flows[flow]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownFlow, flow)
	}
	delete(c.flows, flow)
	c.used -= r.Rate
	if len(c.flows) == 0 {
		c.used = 0
	}
	return nil
}

// DelayBound returns the Theorem-4 delay term (excluding EAT) an admitted
// flow currently receives.
func (c *Controller) DelayBound(flow int) (float64, error) {
	r, ok := c.flows[flow]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrUnknownFlow, flow)
	}
	return qos.SFQDelayBound(c.fc, 0, r.LMax, c.sumLmax(0)-r.LMax), nil
}

// ThroughputFC returns the eq (65) FC characterization of an admitted
// flow's guaranteed service — the hook for building hierarchical
// controllers: construct a child Controller with this FC to admit
// sub-flows of a class.
func (c *Controller) ThroughputFC(flow int) (server.FCParams, error) {
	r, ok := c.flows[flow]
	if !ok {
		return server.FCParams{}, fmt.Errorf("%w: %d", ErrUnknownFlow, flow)
	}
	return qos.SFQThroughputFC(c.fc, r.Rate, r.LMax, c.sumLmax(0)), nil
}

// AdmitEDD wraps the Theorem 7 schedulability test (eq 67) for a Delay
// EDD class: it returns nil iff the flow set (existing plus candidate) is
// schedulable on this controller's server within the given horizon.
func (c *Controller) AdmitEDD(existing []qos.EDDFlowSpec, candidate qos.EDDFlowSpec, horizon float64) error {
	return qos.EDDSchedulable(append(append([]qos.EDDFlowSpec(nil), existing...), candidate), c.fc.C, horizon)
}
