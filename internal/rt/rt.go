// Package rt is the real-time scheduling runtime: the wall-clock,
// goroutine-safe data path the ROADMAP's north star asks for, built on the
// same registered disciplines, flow-indexed core, and PIFO layer the
// discrete-event simulator drives (ROADMAP direction 1). The split mirrors
// the paper's own structure: the tag equations of Section 2 never mention
// a simulator — they need only a monotone "now" — so the pure disciplines
// stay untouched and this package supplies the concurrency shell:
//
//   - a sched.Clock time source (monotonic wall clock by default, a
//     ManualClock for replay harnesses, the simulator's event queue in
//     internal/sim);
//   - per-core shards, each owning one discipline instance behind a
//     mutex, with flows hashed across shards and migratable between them;
//   - batched Enqueue/Dequeue that amortize one lock acquisition and one
//     clock read over a whole batch;
//   - bounded queues with counted shedding (backpressure as ErrShedding,
//     never silent loss), per-flow byte conservation accounting, and the
//     same Probe observability contract the simulator links honor.
//
// Fairness caveat: the paper's theorems bound one queue. A sharded runtime
// runs S independent SFQ instances, so the Theorem 1 bound holds among
// flows that share a shard; across shards fairness is only as good as the
// hash spreads load (DESIGN.md §16). Single-shard runtimes reproduce the
// simulator schedule exactly — internal/conformance pins the digests.
package rt

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/sched"
)

// shardHash spreads flow ids across shards (splitmix64 finalizer — flow
// ids are often small and sequential, so identity modulo would put flows
// 0..k-1 on consecutive shards and migrate them all when S changes by 1;
// the mix makes placement pseudo-random but stable across runs).
func shardHash(flow int) uint64 {
	z := uint64(flow) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// FlowAccount is the per-flow conservation ledger, summed across shards:
// every byte offered to Enqueue is either queued (Enqueued), refused by
// backpressure (Shed), or rejected with an error the caller saw; every
// queued byte eventually reappears in Dequeued. The differential tests pin
// EnqueuedBytes == DequeuedBytes + still-queued bytes exactly.
type FlowAccount struct {
	Enqueued      int64
	Dequeued      int64
	Shed          int64
	EnqueuedBytes float64
	DequeuedBytes float64
	ShedBytes     float64
}

func (a *FlowAccount) add(b *FlowAccount) {
	a.Enqueued += b.Enqueued
	a.Dequeued += b.Dequeued
	a.Shed += b.Shed
	a.EnqueuedBytes += b.EnqueuedBytes
	a.DequeuedBytes += b.DequeuedBytes
	a.ShedBytes += b.ShedBytes
}

// flowEntry is the runtime's registration record for one flow. The shard
// assignment is atomic so the lock-free fast path can read it, re-check it
// under the shard lock, and retry if a migration won the race.
type flowEntry struct {
	shard  atomic.Int32
	weight float64
}

// shard owns one discipline instance. All scheduler calls happen under mu;
// last clamps the clock so a scheduler never sees time go backwards even
// though concurrent goroutines read the clock outside the lock.
type shard struct {
	mu     sync.Mutex
	sch    sched.Interface
	last   float64
	acct   map[int]*FlowAccount
	probe  sched.Probe
	vtimer sched.VirtualTimer
}

// now reads the clock and clamps it monotone for this shard. Callers hold
// sh.mu.
func (sh *shard) now(c sched.Clock) float64 {
	t := c.Now()
	if t < sh.last {
		return sh.last
	}
	sh.last = t
	return t
}

// Runtime is a sharded, goroutine-safe scheduler driven by a Clock. All
// methods are safe for concurrent use.
type Runtime struct {
	name   string
	clock  sched.Clock
	shards []*shard

	mu     sync.RWMutex // guards flows (the map itself) and closed
	flows  map[int]*flowEntry
	closed bool

	limit int64 // per-shard queued-packet cap; 0 = unbounded (atomic)
	rr    atomic.Int64
}

// New constructs a runtime running cfg.Shards instances of the named
// discipline (default 1), driven by cfg.Clock (default the monotonic wall
// clock). It accepts exactly the option vocabulary of sched.New — in fact
// sched.New with WithClock/WithShards delegates here — so any registered
// name works: rt.New("sfq", sched.WithShards(8)).
func New(name string, opts ...sched.Option) (*Runtime, error) {
	return NewFromConfig(name, sched.BuildConfig(opts...))
}

// NewFromConfig is New over an explicit Config (the sched.RuntimeBuilder
// entry point).
func NewFromConfig(name string, cfg sched.Config) (*Runtime, error) {
	n := cfg.Shards
	if n < 0 {
		return nil, fmt.Errorf("%w: rt: negative shard count %d", sched.ErrBadConfig, n)
	}
	if n == 0 {
		n = 1
	}
	clock := cfg.Clock
	if clock == nil {
		clock = WallClock()
	}
	r := &Runtime{
		name:   name,
		clock:  clock,
		shards: make([]*shard, n),
		flows:  make(map[int]*flowEntry),
	}
	for i := range r.shards {
		s, err := sched.NewDiscipline(name, cfg)
		if err != nil {
			return nil, err
		}
		r.shards[i] = &shard{sch: s, acct: make(map[int]*FlowAccount)}
	}
	return r, nil
}

// Name returns the discipline name the runtime was built from.
func (r *Runtime) Name() string { return r.name }

// Shards returns the number of shards.
func (r *Runtime) Shards() int { return len(r.shards) }

// Clock returns the runtime's time source.
func (r *Runtime) Clock() sched.Clock { return r.clock }

// PoolSafe reports whether the underlying discipline drops packet
// references on Dequeue, i.e. whether callers may reuse dequeued packets
// for later enqueues (the zero-allocation steady state).
func (r *Runtime) PoolSafe() bool { return sched.PoolSafeScheduler(r.shards[0].sch) }

// SetQueueLimit bounds each shard to n queued packets; an Enqueue beyond
// the bound is refused with ErrShedding and counted in the flow's ledger.
// 0 removes the bound.
func (r *Runtime) SetQueueLimit(n int) { atomic.StoreInt64(&r.limit, int64(n)) }

// SetProbe installs p (nil removes) on every shard: the same observe-only
// contract as sim.Link.SetProbe, so an obs.Observer attaches to the
// runtime unchanged. Concurrent shards invoke the probe concurrently;
// obs guards itself.
func (r *Runtime) SetProbe(p sched.Probe) {
	for _, sh := range r.shards {
		sh.mu.Lock()
		sh.probe = p
		sh.vtimer, _ = sh.sch.(sched.VirtualTimer)
		sh.mu.Unlock()
	}
}

// ShardOf returns the shard flow would hash to on registration. The live
// assignment can differ after MigrateFlow.
func (r *Runtime) ShardOf(flow int) int {
	return int(shardHash(flow) % uint64(len(r.shards)))
}

// FlowShard returns the shard flow is currently assigned to, or an
// ErrUnknownFlow error.
func (r *Runtime) FlowShard(flow int) (int, error) {
	r.mu.RLock()
	e := r.flows[flow]
	r.mu.RUnlock()
	if e == nil {
		return 0, fmt.Errorf("%w: %d", sched.ErrUnknownFlow, flow)
	}
	return int(e.shard.Load()), nil
}

// AddFlow registers flow with the given weight on its hashed shard, or
// re-weights an existing registration in place.
func (r *Runtime) AddFlow(flow int, weight float64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return fmt.Errorf("%w: runtime", sched.ErrClosed)
	}
	if e := r.flows[flow]; e != nil {
		sh := r.shards[e.shard.Load()]
		sh.mu.Lock()
		err := sh.sch.AddFlow(flow, weight)
		sh.mu.Unlock()
		if err != nil {
			return err
		}
		e.weight = weight
		return nil
	}
	s := r.ShardOf(flow)
	sh := r.shards[s]
	sh.mu.Lock()
	err := sh.sch.AddFlow(flow, weight)
	if err == nil && sh.acct[flow] == nil {
		sh.acct[flow] = &FlowAccount{}
	}
	sh.mu.Unlock()
	if err != nil {
		return err
	}
	e := &flowEntry{weight: weight}
	e.shard.Store(int32(s))
	r.flows[flow] = e
	return nil
}

// RemoveFlow unregisters an idle flow (ErrFlowBusy while packets are
// queued, exactly the Interface contract).
func (r *Runtime) RemoveFlow(flow int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.flows[flow]
	if e == nil {
		return fmt.Errorf("%w: %d", sched.ErrUnknownFlow, flow)
	}
	sh := r.shards[e.shard.Load()]
	sh.mu.Lock()
	err := sh.sch.RemoveFlow(flow)
	sh.mu.Unlock()
	if err != nil {
		return err
	}
	delete(r.flows, flow)
	return nil
}

// MigrateFlow reassigns flow to shard dst. An idle flow moves immediately.
// A backlogged flow is drain-migrated when the discipline supports it
// (sched.Reconfigurable): new arrivals go to dst at once while the old
// shard serves out the remaining backlog and auto-unregisters — the
// runtime analogue of DrainFlow's graceful removal. Disciplines without
// DrainFlow refuse with ErrFlowBusy; migrating onto a shard that is still
// draining this flow refuses with ErrFlowDraining.
func (r *Runtime) MigrateFlow(flow, dst int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return fmt.Errorf("%w: runtime", sched.ErrClosed)
	}
	if dst < 0 || dst >= len(r.shards) {
		return fmt.Errorf("%w: migrate flow %d: shard %d out of range [0,%d)", sched.ErrBadConfig, flow, dst, len(r.shards))
	}
	e := r.flows[flow]
	if e == nil {
		return fmt.Errorf("%w: %d", sched.ErrUnknownFlow, flow)
	}
	src := int(e.shard.Load())
	if src == dst {
		return nil
	}
	a, b := src, dst
	if b < a {
		a, b = b, a
	}
	shSrc, shDst := r.shards[src], r.shards[dst]
	r.shards[a].mu.Lock()
	r.shards[b].mu.Lock()
	defer r.shards[a].mu.Unlock()
	defer r.shards[b].mu.Unlock()

	// Register on dst first: if that fails (e.g. dst is still draining
	// this flow from an earlier migration away from it), nothing changed.
	if err := shDst.sch.AddFlow(flow, e.weight); err != nil {
		return err
	}
	if shSrc.sch.QueuedBytes(flow) == 0 {
		if err := shSrc.sch.RemoveFlow(flow); err != nil {
			_ = shDst.sch.RemoveFlow(flow) // roll back: dst registration is idle
			return err
		}
	} else {
		rc, ok := shSrc.sch.(sched.Reconfigurable)
		if !ok {
			_ = shDst.sch.RemoveFlow(flow)
			return fmt.Errorf("%w: flow %d backlogged on shard %d and %s cannot drain", sched.ErrFlowBusy, flow, src, r.name)
		}
		if err := rc.DrainFlow(flow); err != nil {
			_ = shDst.sch.RemoveFlow(flow)
			return err
		}
	}
	if shDst.acct[flow] == nil {
		shDst.acct[flow] = &FlowAccount{}
	}
	e.shard.Store(int32(dst))
	return nil
}

// resolve returns the flow's entry, or an error. The fast path takes only
// the read lock.
func (r *Runtime) resolve(flow int) (*flowEntry, error) {
	r.mu.RLock()
	closed := r.closed
	e := r.flows[flow]
	r.mu.RUnlock()
	if closed {
		return nil, fmt.Errorf("%w: runtime", sched.ErrClosed)
	}
	if e == nil {
		return nil, fmt.Errorf("%w: %d", sched.ErrUnknownFlow, flow)
	}
	return e, nil
}

// lockShardOf locks the shard the entry is assigned to, retrying if a
// concurrent migration moves the flow between the read and the lock (the
// assignment can only change while both shard locks are held, so once we
// hold the lock and re-read the same value, it is stable for the critical
// section).
func (r *Runtime) lockShardOf(e *flowEntry) (*shard, int) {
	for {
		s := int(e.shard.Load())
		sh := r.shards[s]
		sh.mu.Lock()
		if int(e.shard.Load()) == s {
			return sh, s
		}
		sh.mu.Unlock()
	}
}

// enqueueLocked runs the shard-local enqueue under sh.mu.
func (r *Runtime) enqueueLocked(sh *shard, s int, p *sched.Packet) error {
	if limit := atomic.LoadInt64(&r.limit); limit > 0 && int64(sh.sch.Len()) >= limit {
		if a := sh.acct[p.Flow]; a != nil {
			a.Shed++
			a.ShedBytes += p.Length
		}
		return fmt.Errorf("%w: shard %d over %d queued packets", sched.ErrShedding, s, limit)
	}
	now := sh.now(r.clock)
	p.Arrival = now
	if err := sh.sch.Enqueue(now, p); err != nil {
		return err
	}
	if a := sh.acct[p.Flow]; a != nil {
		a.Enqueued++
		a.EnqueuedBytes += p.Length
	}
	if sh.probe != nil {
		sh.probe.OnEnqueue(now, p)
		if sh.vtimer != nil {
			sh.probe.OnVirtualTime(now, sh.vtimer.V())
		}
	}
	return nil
}

// Enqueue stamps p with the clock's current time and queues it on its
// flow's shard. The packet's Flow and Length must be set; Arrival is
// overwritten with the clock reading. Errors wrap the shared vocabulary:
// ErrClosed, ErrUnknownFlow, ErrShedding, ErrFlowDraining, ErrBadPacket.
func (r *Runtime) Enqueue(p *sched.Packet) error {
	e, err := r.resolve(p.Flow)
	if err != nil {
		return err
	}
	sh, s := r.lockShardOf(e)
	err = r.enqueueLocked(sh, s, p)
	sh.mu.Unlock()
	return err
}

// batchResolveStack bounds the stack-allocated flow-entry scratch in
// EnqueueBatch; larger batches fall back to a heap slice. It matches the
// benchmark batch size so the zero-alloc steady state holds.
const batchResolveStack = 64

// EnqueueBatch queues every packet it can, holding each shard's lock for
// runs of consecutive same-shard packets (callers batching per flow or per
// shard pay one lock per batch). It returns the number of packets
// accepted and the first error encountered; later packets are still
// attempted, so a single shed mid-batch does not discard the rest.
func (r *Runtime) EnqueueBatch(ps []*sched.Packet) (int, error) {
	// Resolve every packet's flow entry up front, under one read-lock
	// acquisition for the whole batch. Resolving inside the shard-locked
	// loop below would hold a shard mutex while waiting on r.mu — the
	// reverse of the AddFlow/RemoveFlow/MigrateFlow order (r.mu, then
	// shard mutexes) — and deadlock against a concurrent flow-table
	// writer. No shard lock is held anywhere in this pass.
	var stack [batchResolveStack]*flowEntry
	entries := stack[:]
	if len(ps) > len(entries) {
		entries = make([]*flowEntry, len(ps))
	} else {
		entries = entries[:len(ps)]
	}
	r.mu.RLock()
	if r.closed {
		r.mu.RUnlock()
		return 0, fmt.Errorf("%w: runtime", sched.ErrClosed)
	}
	for i, p := range ps {
		entries[i] = r.flows[p.Flow]
	}
	r.mu.RUnlock()

	n := 0
	var firstErr error
	var sh *shard
	cur := -1
	for i, p := range ps {
		e := entries[i]
		if e == nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("%w: %d", sched.ErrUnknownFlow, p.Flow)
			}
			continue
		}
		if s := int(e.shard.Load()); s != cur || sh == nil {
			if sh != nil {
				sh.mu.Unlock()
				sh = nil
			}
			sh, cur = r.lockShardOf(e)
		}
		if err := r.enqueueLocked(sh, cur, p); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		n++
	}
	if sh != nil {
		sh.mu.Unlock()
	}
	return n, firstErr
}

// dequeueLocked runs the shard-local dequeue under sh.mu.
func (sh *shard) dequeueLocked(r *Runtime) (*sched.Packet, bool) {
	now := sh.now(r.clock)
	p, ok := sh.sch.Dequeue(now)
	if !ok {
		return nil, false
	}
	if a := sh.acct[p.Flow]; a != nil {
		a.Dequeued++
		a.DequeuedBytes += p.Length
	}
	if sh.probe != nil {
		sh.probe.OnDequeue(now, p)
		if sh.vtimer != nil {
			sh.probe.OnVirtualTime(now, sh.vtimer.V())
		}
	}
	return p, true
}

// DequeueShard pops the next packet from one shard's schedule at the
// clock's current time. ok is false when the shard is idle. Dequeueing
// remains legal on a closed runtime — closing stops arrivals, the backlog
// drains.
func (r *Runtime) DequeueShard(s int) (*sched.Packet, bool) {
	sh := r.shards[s]
	sh.mu.Lock()
	p, ok := sh.dequeueLocked(r)
	sh.mu.Unlock()
	return p, ok
}

// DequeueBatch pops up to len(buf) packets from shard s under one lock
// acquisition and one clock read, returning how many it wrote into buf.
// This is the per-core worker's fast path: with a PoolSafe discipline the
// returned packets may be reused for the worker's next EnqueueBatch,
// making the steady state allocation-free.
func (r *Runtime) DequeueBatch(s int, buf []*sched.Packet) int {
	sh := r.shards[s]
	sh.mu.Lock()
	n := 0
	for n < len(buf) {
		p, ok := sh.dequeueLocked(r)
		if !ok {
			break
		}
		buf[n] = p
		n++
	}
	sh.mu.Unlock()
	return n
}

// Dequeue pops from the runtime as a whole, scanning shards round-robin
// from a rotating cursor so no shard starves. It is the Interface-shaped
// escape hatch (and what the sched.New adapter uses); per-core workers
// should prefer DequeueShard/DequeueBatch, which never touch other
// shards' locks.
func (r *Runtime) Dequeue() (*sched.Packet, bool) {
	n := len(r.shards)
	start := int(r.rr.Add(1)-1) % n
	if start < 0 {
		start += n
	}
	for i := 0; i < n; i++ {
		if p, ok := r.DequeueShard((start + i) % n); ok {
			return p, true
		}
	}
	return nil, false
}

// Len returns the total queued packets across shards.
func (r *Runtime) Len() int {
	total := 0
	for _, sh := range r.shards {
		sh.mu.Lock()
		total += sh.sch.Len()
		sh.mu.Unlock()
	}
	return total
}

// QueuedBytes sums flow's queued bytes across every shard (a drain-
// migrating flow can hold bytes on two shards at once).
func (r *Runtime) QueuedBytes(flow int) float64 {
	total := 0.0
	for _, sh := range r.shards {
		sh.mu.Lock()
		total += sh.sch.QueuedBytes(flow)
		sh.mu.Unlock()
	}
	return total
}

// FlowAccount returns flow's conservation ledger summed across shards.
func (r *Runtime) FlowAccount(flow int) FlowAccount {
	var out FlowAccount
	for _, sh := range r.shards {
		sh.mu.Lock()
		if a := sh.acct[flow]; a != nil {
			out.add(a)
		}
		sh.mu.Unlock()
	}
	return out
}

// Close stops the intake: subsequent AddFlow/Enqueue/Migrate calls fail
// with ErrClosed. The backlog stays dequeueable so workers drain it.
// Closing twice is an error (ErrClosed), making shutdown bugs loud.
func (r *Runtime) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return fmt.Errorf("%w: already closed", sched.ErrClosed)
	}
	r.closed = true
	return nil
}

// Closed reports whether Close was called.
func (r *Runtime) Closed() bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.closed
}

// AsScheduler adapts the runtime to the sched.Interface shape so existing
// Interface consumers can hold a runtime-driven instance. The now
// arguments of Enqueue/Dequeue are ignored — the runtime's clock is the
// authority (that is the point of runtime-driven construction); the
// packet still gets its Arrival stamped from the clock.
func (r *Runtime) AsScheduler() sched.Interface { return ifaceAdapter{r} }

type ifaceAdapter struct{ r *Runtime }

func (a ifaceAdapter) AddFlow(flow int, weight float64) error { return a.r.AddFlow(flow, weight) }
func (a ifaceAdapter) RemoveFlow(flow int) error              { return a.r.RemoveFlow(flow) }
func (a ifaceAdapter) Enqueue(_ float64, p *sched.Packet) error {
	return a.r.Enqueue(p)
}
func (a ifaceAdapter) Dequeue(_ float64) (*sched.Packet, bool) { return a.r.Dequeue() }
func (a ifaceAdapter) Len() int                                { return a.r.Len() }
func (a ifaceAdapter) QueuedBytes(flow int) float64            { return a.r.QueuedBytes(flow) }

// init wires runtime-driven construction into the sched registry:
// sched.New(name, sched.WithClock(...)) or WithShards(...) builds through
// here once internal/rt is imported.
func init() {
	sched.RegisterRuntimeBuilder(func(name string, cfg sched.Config) (sched.Interface, error) {
		r, err := NewFromConfig(name, cfg)
		if err != nil {
			return nil, err
		}
		return r.AsScheduler(), nil
	})
}
