package rt_test

import (
	"errors"
	"testing"

	_ "repro/internal/core"
	"repro/internal/liveops"
	_ "repro/internal/pifo"
	"repro/internal/rt"
	"repro/internal/sched"
)

// noSnap narrows a scheduler to the bare Interface method set, hiding any
// Snapshotter implementation from type assertions.
type noSnap struct{ sched.Interface }

// TestErrorVocabulary pins the shared sentinel-error vocabulary across the
// scheduling stack: every contract-path failure in sched, pifo, liveops,
// and rt must be errors.Is-able against one of the sched sentinels, so
// callers branch on errors.Is instead of string matching. Each table entry
// provokes the sentinel through a real API call on the layer named in the
// case — if a layer swaps a sentinel or stops wrapping, this table is the
// tripwire.
func TestErrorVocabulary(t *testing.T) {
	newRT := func(t *testing.T) *rt.Runtime {
		return mustRuntime(t, "sfq", sched.WithClock(&sched.ManualClock{}))
	}
	cases := []struct {
		name    string
		want    error
		trigger func(t *testing.T) error
	}{
		{"rt/enqueue-unregistered/ErrUnknownFlow", sched.ErrUnknownFlow, func(t *testing.T) error {
			return newRT(t).Enqueue(&sched.Packet{Flow: 1, Length: 1})
		}},
		{"rt/remove-backlogged/ErrFlowBusy", sched.ErrFlowBusy, func(t *testing.T) error {
			r := newRT(t)
			if err := r.AddFlow(1, 1); err != nil {
				t.Fatal(err)
			}
			if err := r.Enqueue(&sched.Packet{Flow: 1, Length: 1}); err != nil {
				t.Fatal(err)
			}
			return r.RemoveFlow(1)
		}},
		{"core/negative-weight/ErrBadWeight", sched.ErrBadWeight, func(t *testing.T) error {
			return newRT(t).AddFlow(1, -2)
		}},
		{"core/zero-length-packet/ErrBadPacket", sched.ErrBadPacket, func(t *testing.T) error {
			r := newRT(t)
			if err := r.AddFlow(1, 1); err != nil {
				t.Fatal(err)
			}
			return r.Enqueue(&sched.Packet{Flow: 1, Length: 0})
		}},
		{"core/clock-regression/ErrTimeWentBack", sched.ErrTimeWentBack, func(t *testing.T) error {
			// Only the bare discipline surfaces this: the runtime clamps
			// its clock monotone (TestRuntimeMonotoneClock).
			s := sched.MustNew("sfq")
			if err := s.AddFlow(1, 1); err != nil {
				t.Fatal(err)
			}
			if err := s.Enqueue(5, &sched.Packet{Flow: 1, Length: 1}); err != nil {
				t.Fatal(err)
			}
			return s.Enqueue(4, &sched.Packet{Flow: 1, Seq: 1, Length: 1})
		}},
		{"sched/unknown-name/ErrBadConfig", sched.ErrBadConfig, func(t *testing.T) error {
			_, err := sched.New("no-such-discipline")
			return err
		}},
		{"sched/shards-without-clock/ErrBadConfig", sched.ErrBadConfig, func(t *testing.T) error {
			_, err := sched.New("sfq", sched.WithShards(4))
			return err
		}},
		{"pifo/wfq-without-capacity/ErrBadConfig", sched.ErrBadConfig, func(t *testing.T) error {
			_, err := sched.New("pifo-wfq")
			return err
		}},
		{"core/enqueue-while-draining/ErrFlowDraining", sched.ErrFlowDraining, func(t *testing.T) error {
			s := sched.MustNew("sfq")
			rc, ok := s.(sched.Reconfigurable)
			if !ok {
				t.Fatal("sfq is not Reconfigurable")
			}
			if err := s.AddFlow(1, 1); err != nil {
				t.Fatal(err)
			}
			if err := s.Enqueue(0, &sched.Packet{Flow: 1, Length: 1}); err != nil {
				t.Fatal(err)
			}
			if err := rc.DrainFlow(1); err != nil {
				t.Fatal(err)
			}
			return s.Enqueue(1, &sched.Packet{Flow: 1, Seq: 1, Length: 1})
		}},
		{"liveops/non-snapshotter/ErrBadState", sched.ErrBadState, func(t *testing.T) error {
			// Wrapping in a bare-Interface shim hides any Snapshotter
			// support; kill-and-restore must refuse it with the shared
			// sentinel rather than an ad-hoc string error.
			inner := noSnap{sched.MustNew("sfq")}
			_, err := liveops.SnapshotRestore(func() sched.Interface { return sched.MustNew("sfq") })(0, inner)
			return err
		}},
		{"rt/finish-unran-ticket/ErrBadState", sched.ErrBadState, func(t *testing.T) error {
			a, err := rt.NewAdmitter(rt.AdmitterConfig{Runtime: newRT(t), Limit: 1})
			if err != nil {
				t.Fatal(err)
			}
			if err := a.Runtime().AddFlow(1, 1); err != nil {
				t.Fatal(err)
			}
			if err := a.SetLimit(0); err != nil {
				t.Fatal(err)
			}
			tk, err := a.Submit(1, 1)
			if err != nil {
				t.Fatal(err)
			}
			return tk.Finish()
		}},
		{"rt/bounded-queue/ErrShedding", sched.ErrShedding, func(t *testing.T) error {
			r := newRT(t)
			r.SetQueueLimit(1)
			if err := r.AddFlow(1, 1); err != nil {
				t.Fatal(err)
			}
			if err := r.Enqueue(&sched.Packet{Flow: 1, Length: 1}); err != nil {
				t.Fatal(err)
			}
			return r.Enqueue(&sched.Packet{Flow: 1, Seq: 1, Length: 1})
		}},
		{"rt/use-after-close/ErrClosed", sched.ErrClosed, func(t *testing.T) error {
			r := newRT(t)
			if err := r.Close(); err != nil {
				t.Fatal(err)
			}
			return r.AddFlow(1, 1)
		}},
		{"core/self-clocked-capacity/ErrNoCapacityKnob", sched.ErrNoCapacityKnob, func(t *testing.T) error {
			rc, ok := sched.MustNew("sfq").(sched.Reconfigurable)
			if !ok {
				t.Fatal("sfq is not Reconfigurable")
			}
			return rc.SetCapacity(2)
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			err := tc.trigger(t)
			if err == nil {
				t.Fatal("trigger returned nil error")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, not errors.Is-able against %v", err, tc.want)
			}
		})
	}
}
