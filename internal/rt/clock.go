package rt

import (
	"time"

	"repro/internal/sched"
)

// wallClock reads the process monotonic clock as float64 seconds since
// construction. time.Since on a time.Time carrying a monotonic reading
// never goes backwards, which is exactly the Clock contract; the zero
// point is arbitrary (only differences feed the tag equations).
type wallClock struct {
	start time.Time
}

// WallClock returns a monotonic wall clock starting at 0. This is the
// default time source of a Runtime: the discipline's virtual-time
// equations run over real elapsed seconds, so a flow's start tags advance
// with actual service, not simulated service.
func WallClock() sched.Clock {
	return &wallClock{start: time.Now()}
}

func (c *wallClock) Now() float64 { return time.Since(c.start).Seconds() }
