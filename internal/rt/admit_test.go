package rt_test

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/admission"
	_ "repro/internal/core"
	"repro/internal/rt"
	"repro/internal/sched"
	"repro/internal/server"
)

func newAdmitter(t *testing.T, cfg rt.AdmitterConfig, opts ...sched.Option) *rt.Admitter {
	t.Helper()
	if cfg.Runtime == nil {
		cfg.Runtime = mustRuntime(t, "sfq", opts...)
	}
	if cfg.Limit == 0 {
		cfg.Limit = 1
	}
	a, err := rt.NewAdmitter(cfg)
	if err != nil {
		t.Fatalf("NewAdmitter: %v", err)
	}
	return a
}

func TestAdmitterConfigValidation(t *testing.T) {
	r := mustRuntime(t, "sfq")
	for _, cfg := range []rt.AdmitterConfig{
		{Runtime: nil, Limit: 1},
		{Runtime: r, Limit: 0},
		{Runtime: r, Limit: -3},
		{Runtime: r, Limit: 1, MaxQueued: -1},
		{Runtime: r, Limit: 1, CompactThreshold: -1},
	} {
		if _, err := rt.NewAdmitter(cfg); !errors.Is(err, sched.ErrBadConfig) {
			t.Errorf("NewAdmitter(%+v) = %v, want ErrBadConfig", cfg, err)
		}
	}
}

// TestAdmitterFairOrder pins the point of the facade: seats are handed out
// in the discipline's schedule order, not submission order. The expected
// order is computed by running the identical virtual packets through a
// bare SFQ instance.
func TestAdmitterFairOrder(t *testing.T) {
	type req struct {
		flow int
		cost float64
	}
	weights := map[int]float64{1: 1, 2: 2, 3: 4}
	var reqs []req
	for i := 0; i < 8; i++ {
		for f := 1; f <= 3; f++ {
			reqs = append(reqs, req{flow: f, cost: 10})
		}
	}

	// Reference schedule from the bare discipline at a frozen clock.
	ref := sched.MustNew("sfq")
	for f, w := range weights {
		if err := ref.AddFlow(f, w); err != nil {
			t.Fatal(err)
		}
	}
	for i, q := range reqs {
		if err := ref.Enqueue(0, &sched.Packet{Flow: q.flow, Seq: int64(i), Length: q.cost}); err != nil {
			t.Fatal(err)
		}
	}
	var want []int
	for {
		p, ok := ref.Dequeue(0)
		if !ok {
			break
		}
		want = append(want, p.Flow)
	}

	// Same requests through the admitter: frozen manual clock, dispatch
	// paused during submission, then seats released one at a time.
	clock := &sched.ManualClock{}
	a := newAdmitter(t, rt.AdmitterConfig{Limit: 1}, sched.WithClock(clock))
	for f, w := range weights {
		if err := a.AdmitFlow(admission.Request{Flow: f, Rate: w, LMax: 10}); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.SetLimit(0); err != nil {
		t.Fatal(err)
	}
	tickets := make([]*rt.Ticket, len(reqs))
	for i, q := range reqs {
		tk, err := a.Submit(q.flow, q.cost)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		tickets[i] = tk
	}
	if got := a.Queued(); got != len(reqs) {
		t.Fatalf("Queued = %d, want %d", got, len(reqs))
	}
	if err := a.SetLimit(1); err != nil {
		t.Fatal(err)
	}
	var got []int
	for range reqs {
		var running *rt.Ticket
		for _, tk := range tickets {
			if tk.Running() {
				if running != nil {
					t.Fatal("two tickets hold the single seat")
				}
				running = tk
			}
		}
		if running == nil {
			t.Fatalf("no ticket running after %d dispatches", len(got))
		}
		got = append(got, running.Flow())
		if err := running.Finish(); err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("dispatched %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch order diverges at %d: got %v, want %v", i, got, want)
		}
	}
	if a.Executing() != 0 || a.Queued() != 0 {
		t.Fatalf("executing/queued = %d/%d after drain", a.Executing(), a.Queued())
	}
}

func TestAdmitterShedding(t *testing.T) {
	clock := &sched.ManualClock{}
	a := newAdmitter(t, rt.AdmitterConfig{Limit: 1, MaxQueued: 2}, sched.WithClock(clock))
	if err := a.AdmitFlow(admission.Request{Flow: 1, Rate: 1, LMax: 1}); err != nil {
		t.Fatal(err)
	}
	if err := a.SetLimit(0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := a.Submit(1, 1); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if _, err := a.Submit(1, 1); !errors.Is(err, sched.ErrShedding) {
		t.Fatalf("submit over MaxQueued: %v", err)
	}
	// Submitting for a flow never admitted fails loudly, not silently.
	if _, err := a.Submit(9, 1); !errors.Is(err, sched.ErrShedding) && !errors.Is(err, sched.ErrUnknownFlow) {
		t.Fatalf("submit unknown flow: %v", err)
	}
}

func TestAdmitterCancelAndFinish(t *testing.T) {
	clock := &sched.ManualClock{}
	a := newAdmitter(t, rt.AdmitterConfig{Limit: 1}, sched.WithClock(clock))
	if err := a.AdmitFlow(admission.Request{Flow: 1, Rate: 1, LMax: 1}); err != nil {
		t.Fatal(err)
	}
	if err := a.SetLimit(0); err != nil {
		t.Fatal(err)
	}
	tk, err := a.Submit(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := tk.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("wait on canceled ctx: %v", err)
	}
	// A canceled ticket never ran: Finish is an ErrBadState.
	if err := tk.Finish(); !errors.Is(err, sched.ErrBadState) {
		t.Fatalf("finish canceled ticket: %v", err)
	}
	// The canceled ticket must not consume a seat once dispatch resumes.
	tk2, err := a.Submit(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SetLimit(1); err != nil {
		t.Fatal(err)
	}
	if err := tk2.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if tk2.Seq() == 0 || !tk2.Running() {
		t.Fatalf("ticket 2 not dispatched (seq %d)", tk2.Seq())
	}
	if err := tk2.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := tk2.Finish(); !errors.Is(err, sched.ErrBadState) {
		t.Fatalf("double finish: %v", err)
	}
}

// TestAdmitterCancelCompaction is the regression test for dead-ticket
// compaction: before it, canceled tickets kept their MaxQueued slots (and
// their flows' QueuedBytes) until a seat freed and dispatch popped past
// them, so a cancel storm under a long seat hold could wedge intake. Now
// the cancel that brings the canceled backlog to CompactThreshold drops
// the queue's dead prefix immediately — no seat movement required — and
// fair order is preserved via the staged live ticket.
func TestAdmitterCancelCompaction(t *testing.T) {
	clock := &sched.ManualClock{}
	a := newAdmitter(t, rt.AdmitterConfig{Limit: 1, MaxQueued: 5, CompactThreshold: 3},
		sched.WithClock(clock))
	if err := a.AdmitFlow(admission.Request{Flow: 1, Rate: 1, LMax: 1}); err != nil {
		t.Fatal(err)
	}
	if err := a.SetLimit(0); err != nil { // no seats: nothing can dispatch
		t.Fatal(err)
	}
	tickets := make([]*rt.Ticket, 5)
	for i := range tickets {
		tk, err := a.Submit(1, 1)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		tickets[i] = tk
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	// Two cancels stay below the threshold: slots remain occupied.
	for i := 0; i < 2; i++ {
		if err := tickets[i].Wait(ctx); !errors.Is(err, context.Canceled) {
			t.Fatalf("cancel %d: %v", i, err)
		}
	}
	if got := a.Queued(); got != 5 {
		t.Fatalf("Queued = %d before threshold, want 5", got)
	}
	if _, err := a.Submit(1, 1); !errors.Is(err, sched.ErrShedding) {
		t.Fatalf("submit with dead tickets below threshold: %v", err)
	}

	// The third cancel reaches the threshold: the dead prefix (tickets
	// 0-2) is dropped with no seat movement, freeing their slots.
	if err := tickets[2].Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatal("cancel 2")
	}
	if got := a.Queued(); got != 2 {
		t.Fatalf("Queued = %d after compaction, want 2", got)
	}
	extra, err := a.Submit(1, 1) // the freed slots accept new work again
	if err != nil {
		t.Fatalf("submit after compaction: %v", err)
	}

	// Fair order survives: dispatch serves 3, 4, then the late submit.
	if err := a.SetLimit(1); err != nil {
		t.Fatal(err)
	}
	for i, tk := range []*rt.Ticket{tickets[3], tickets[4], extra} {
		if err := tk.Wait(context.Background()); err != nil {
			t.Fatalf("wait %d: %v", i, err)
		}
		if !tk.Running() {
			t.Fatalf("ticket %d dispatched out of order", i)
		}
		if err := tk.Finish(); err != nil {
			t.Fatal(err)
		}
	}
	if a.Executing() != 0 || a.Queued() != 0 {
		t.Fatalf("executing/queued = %d/%d after drain", a.Executing(), a.Queued())
	}
}

// TestAdmitterCompactionStagesLiveHead covers the staged path: when the
// queue's head is live at compaction time, it is popped and parked, and
// the next dispatch must serve it first (fair order), even though the
// dead tickets behind it could not be dropped yet.
func TestAdmitterCompactionStagesLiveHead(t *testing.T) {
	clock := &sched.ManualClock{}
	a := newAdmitter(t, rt.AdmitterConfig{Limit: 1, CompactThreshold: 2}, sched.WithClock(clock))
	if err := a.AdmitFlow(admission.Request{Flow: 1, Rate: 1, LMax: 1}); err != nil {
		t.Fatal(err)
	}
	if err := a.SetLimit(0); err != nil {
		t.Fatal(err)
	}
	tickets := make([]*rt.Ticket, 4)
	for i := range tickets {
		tk, err := a.Submit(1, 1)
		if err != nil {
			t.Fatal(err)
		}
		tickets[i] = tk
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Cancel tickets 1 and 2 — the head (0) stays live, so compaction
	// stages it and leaves the dead pair queued behind it.
	for _, i := range []int{1, 2} {
		if err := tickets[i].Wait(ctx); !errors.Is(err, context.Canceled) {
			t.Fatalf("cancel %d", i)
		}
	}
	if got := a.Queued(); got != 4 {
		t.Fatalf("Queued = %d with live head staged, want 4", got)
	}
	if err := a.SetLimit(1); err != nil {
		t.Fatal(err)
	}
	// Ticket 0 (staged) must hold the seat; the dead pair popped and
	// vanished on the way to 3.
	if err := tickets[0].Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !tickets[0].Running() {
		t.Fatal("staged ticket not dispatched first")
	}
	if err := tickets[0].Finish(); err != nil {
		t.Fatal(err)
	}
	if err := tickets[3].Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := tickets[3].Finish(); err != nil {
		t.Fatal(err)
	}
	if a.Executing() != 0 || a.Queued() != 0 {
		t.Fatalf("executing/queued = %d/%d after drain", a.Executing(), a.Queued())
	}
}

func TestAdmitterClose(t *testing.T) {
	clock := &sched.ManualClock{}
	a := newAdmitter(t, rt.AdmitterConfig{Limit: 1}, sched.WithClock(clock))
	if err := a.AdmitFlow(admission.Request{Flow: 1, Rate: 1, LMax: 1}); err != nil {
		t.Fatal(err)
	}
	if err := a.SetLimit(0); err != nil {
		t.Fatal(err)
	}
	tk, err := a.Submit(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Submit(1, 1); !errors.Is(err, sched.ErrClosed) {
		t.Fatalf("submit after close: %v", err)
	}
	if err := a.Close(); !errors.Is(err, sched.ErrClosed) {
		t.Fatalf("double close: %v", err)
	}
	// Requests already waiting still dispatch in fair order.
	if err := a.SetLimit(1); err != nil {
		t.Fatal(err)
	}
	if err := tk.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := tk.Finish(); err != nil {
		t.Fatal(err)
	}
}

// TestAdmitterForeignPackets pins the checked dispatch assertion: a packet
// enqueued on the runtime directly (not through Submit) must not panic
// dispatch — it is drained and discarded — and the request behind it still
// dispatches. Seq is polled concurrently with dispatch to pin its
// atomicity under -race.
func TestAdmitterForeignPackets(t *testing.T) {
	clock := &sched.ManualClock{}
	a := newAdmitter(t, rt.AdmitterConfig{Limit: 1}, sched.WithClock(clock))
	if err := a.AdmitFlow(admission.Request{Flow: 1, Rate: 1, LMax: 1}); err != nil {
		t.Fatal(err)
	}
	if err := a.SetLimit(0); err != nil {
		t.Fatal(err)
	}
	// A foreign packet sneaks in ahead of the real request.
	if err := a.Runtime().Enqueue(&sched.Packet{Flow: 1, Length: 1}); err != nil {
		t.Fatal(err)
	}
	tk, err := a.Submit(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = tk.Seq()
			}
		}
	}()
	if err := a.SetLimit(1); err != nil {
		t.Fatal(err)
	}
	if err := tk.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if tk.Seq() != 1 {
		t.Fatalf("Seq = %d, want 1", tk.Seq())
	}
	if err := tk.Finish(); err != nil {
		t.Fatal(err)
	}
	if a.Executing() != 0 || a.Queued() != 0 {
		t.Fatalf("executing/queued = %d/%d after drain", a.Executing(), a.Queued())
	}
}

// TestAdmitterController runs the control plane end to end: Theorem-style
// reservation checks gate AdmitFlow, refusals pass through unchanged, and
// DelayBound reports the admitted flow's Theorem-4 term.
func TestAdmitterController(t *testing.T) {
	ctrl := admission.NewController(server.FCParams{C: 100})
	a := newAdmitter(t, rt.AdmitterConfig{Limit: 2, Controller: ctrl})
	if err := a.AdmitFlow(admission.Request{Flow: 1, Rate: 60, LMax: 10}); err != nil {
		t.Fatal(err)
	}
	if err := a.AdmitFlow(admission.Request{Flow: 2, Rate: 60, LMax: 10}); !errors.Is(err, admission.ErrOverCommitted) {
		t.Fatalf("over-committed admit: %v", err)
	}
	if _, err := a.Runtime().FlowShard(2); !errors.Is(err, sched.ErrUnknownFlow) {
		t.Fatal("refused flow leaked onto the data path")
	}
	if d, err := a.DelayBound(1); err != nil || d <= 0 {
		t.Fatalf("DelayBound = %v/%v", d, err)
	}
	if err := a.ReleaseFlow(1); err != nil {
		t.Fatal(err)
	}
	// Capacity is free again.
	if err := a.AdmitFlow(admission.Request{Flow: 2, Rate: 60, LMax: 10}); err != nil {
		t.Fatalf("admit after release: %v", err)
	}
	// Without a controller, DelayBound is a config error.
	bare := newAdmitter(t, rt.AdmitterConfig{Limit: 1})
	if _, err := bare.DelayBound(1); !errors.Is(err, sched.ErrBadConfig) {
		t.Fatalf("DelayBound without controller: %v", err)
	}
}

// TestAdmitterConcurrent hammers Admit/Finish from many goroutines under
// the race detector: the seat limit must never be exceeded and every
// admitted request must finish.
func TestAdmitterConcurrent(t *testing.T) {
	const limit = 3
	a := newAdmitter(t, rt.AdmitterConfig{Limit: limit})
	for f := 1; f <= 4; f++ {
		if err := a.AdmitFlow(admission.Request{Flow: f, Rate: float64(f), LMax: 1}); err != nil {
			t.Fatal(err)
		}
	}
	perFlow := 50
	if testing.Short() {
		perFlow = 10
	}
	var wg sync.WaitGroup
	var inFlight, peak, violations int64
	var mu sync.Mutex
	for f := 1; f <= 4; f++ {
		for i := 0; i < perFlow; i++ {
			wg.Add(1)
			go func(f int) {
				defer wg.Done()
				tk, err := a.Admit(context.Background(), f, 1)
				if err != nil {
					t.Errorf("admit flow %d: %v", f, err)
					return
				}
				mu.Lock()
				inFlight++
				if inFlight > peak {
					peak = inFlight
				}
				if inFlight > limit {
					violations++
				}
				inFlight--
				mu.Unlock()
				if err := tk.Finish(); err != nil {
					t.Errorf("finish flow %d: %v", f, err)
				}
			}(f)
		}
	}
	wg.Wait()
	if violations > 0 {
		t.Fatalf("seat limit exceeded %d times (peak %d > %d)", violations, peak, limit)
	}
	if a.Executing() != 0 || a.Queued() != 0 {
		t.Fatalf("executing/queued = %d/%d after drain", a.Executing(), a.Queued())
	}
}
