package rt

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/admission"
	"repro/internal/sched"
)

// Admitter is the concurrency-limited fair admission facade: request
// scheduling in the shape of k8s API Priority & Fairness, with the
// paper's disciplines deciding the order. Each Admit(ctx, flow, cost)
// queues a virtual packet of Length = cost on the runtime's fair queue;
// at most Limit admitted requests execute concurrently, and every
// Ticket.Finish frees a seat for the next packet in fair order. The
// control plane composes with internal/admission: AdmitFlow runs a
// request through the reservation controller's Σ r <= C and Theorem-4
// delay checks before the flow may compete for seats, so the data path
// only ever serves flows whose guarantees the math admits.
type Admitter struct {
	rt   *Runtime
	ctrl *admission.Controller

	mu        sync.Mutex
	limit     int
	executing int
	queued    int
	maxQueued int
	seq       int64
	closed    bool

	// Dead-ticket compaction: canceled counts tickets in state tCanceled
	// still holding queue slots; once it reaches compactAt, the canceling
	// Wait pops the fair queue's head until it meets a live ticket, which
	// is staged (served ahead of the queue on the next dispatch, keeping
	// fair order) while the dead prefix is dropped.
	canceled  int
	staged    *Ticket
	compactAt int
}

// defaultCompactThreshold is the canceled-ticket count that triggers
// compaction when AdmitterConfig.CompactThreshold is 0: high enough that
// sporadic cancels stay O(1), low enough that a cancel storm cannot hold
// more than a handful of MaxQueued slots hostage.
const defaultCompactThreshold = 16

// AdmitterConfig configures NewAdmitter.
type AdmitterConfig struct {
	// Runtime is the fair queue requests wait in. Required. Costs are in
	// the same unit as flow weights (a flow of weight w draining cost-c
	// requests is served c/w virtual seconds apart).
	Runtime *Runtime

	// Limit is the maximum number of concurrently executing admitted
	// requests (the APF seat count). Required (> 0).
	Limit int

	// MaxQueued bounds the requests waiting for a seat; a Submit beyond
	// the bound sheds with ErrShedding. 0 means unbounded. A canceled
	// request keeps its slot until dispatch pops it or the canceled count
	// reaches CompactThreshold and compaction drops the queue's dead
	// prefix — size MaxQueued with roughly CompactThreshold slots of
	// headroom for in-flight cancels.
	MaxQueued int

	// CompactThreshold is the number of canceled-but-still-queued tickets
	// that triggers opportunistic compaction on the next cancel (dead
	// tickets at the head of the fair queue are dropped without waiting
	// for a seat to free). 0 means the default (16); negative values are
	// an ErrBadConfig. Compaction preserves fair order: the first live
	// ticket found is staged and dispatched before anything else.
	CompactThreshold int

	// Controller, when non-nil, is the reservation controller AdmitFlow /
	// ReleaseFlow run requests through.
	Controller *admission.Controller
}

// Ticket is one admitted-or-waiting request. States move strictly
// queued → dispatched → finished, with queued → canceled on a context
// expiry that wins the race against dispatch.
type Ticket struct {
	a     *Admitter
	flow  int
	cost  float64
	state atomic.Int32
	seq   atomic.Int64 // dispatch order, assigned at dispatch
	ready chan struct{}
}

const (
	tQueued int32 = iota
	tDispatched
	tCanceled
	tFinished
)

// NewAdmitter validates cfg and returns the facade.
func NewAdmitter(cfg AdmitterConfig) (*Admitter, error) {
	if cfg.Runtime == nil {
		return nil, fmt.Errorf("%w: admitter requires a Runtime", sched.ErrBadConfig)
	}
	if cfg.Limit <= 0 {
		return nil, fmt.Errorf("%w: admitter limit %d must be positive", sched.ErrBadConfig, cfg.Limit)
	}
	if cfg.MaxQueued < 0 {
		return nil, fmt.Errorf("%w: admitter max queued %d must be >= 0", sched.ErrBadConfig, cfg.MaxQueued)
	}
	if cfg.CompactThreshold < 0 {
		return nil, fmt.Errorf("%w: admitter compact threshold %d must be >= 0", sched.ErrBadConfig, cfg.CompactThreshold)
	}
	compactAt := cfg.CompactThreshold
	if compactAt == 0 {
		compactAt = defaultCompactThreshold
	}
	return &Admitter{
		rt: cfg.Runtime, ctrl: cfg.Controller,
		limit: cfg.Limit, maxQueued: cfg.MaxQueued, compactAt: compactAt,
	}, nil
}

// Runtime returns the underlying fair-queue runtime (e.g. to attach an
// obs probe or read FlowAccount ledgers). Observe-only access: the
// admitter owns the queue's contents, and a packet enqueued on the
// runtime directly — rather than through Submit — is drained and
// discarded by dispatch, which only executes Ticket-carrying packets.
func (a *Admitter) Runtime() *Runtime { return a.rt }

// AdmitFlow admits a flow end to end: through the reservation controller
// (if configured) and onto the runtime's fair queue with weight = reserved
// rate. The controller's refusals (ErrOverCommitted, ErrDelayUnmet) pass
// through unchanged.
func (a *Admitter) AdmitFlow(req admission.Request) error {
	if a.ctrl != nil {
		if err := a.ctrl.Admit(req); err != nil {
			return err
		}
	}
	if err := a.rt.AddFlow(req.Flow, req.Rate); err != nil {
		if a.ctrl != nil {
			_ = a.ctrl.Release(req.Flow)
		}
		return err
	}
	return nil
}

// ReleaseFlow releases a flow's reservation and unregisters it from the
// runtime. The flow must be idle (ErrFlowBusy otherwise, per the
// Interface contract).
func (a *Admitter) ReleaseFlow(flow int) error {
	if err := a.rt.RemoveFlow(flow); err != nil {
		return err
	}
	if a.ctrl != nil {
		return a.ctrl.Release(flow)
	}
	return nil
}

// DelayBound exposes the controller's Theorem-4 delay term for an
// admitted flow (ErrBadConfig when no controller is configured).
func (a *Admitter) DelayBound(flow int) (float64, error) {
	if a.ctrl == nil {
		return 0, fmt.Errorf("%w: admitter has no reservation controller", sched.ErrBadConfig)
	}
	return a.ctrl.DelayBound(flow)
}

// Submit queues a request of the given cost for flow without blocking and
// returns its ticket; callers then Wait for a seat. Errors: ErrClosed,
// ErrShedding (queue bound), ErrUnknownFlow (flow never admitted),
// ErrBadPacket (cost <= 0).
func (a *Admitter) Submit(flow int, cost float64) (*Ticket, error) {
	t := &Ticket{a: a, flow: flow, cost: cost, ready: make(chan struct{})}
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil, fmt.Errorf("%w: admitter", sched.ErrClosed)
	}
	if a.maxQueued > 0 && a.queued >= a.maxQueued {
		a.mu.Unlock()
		return nil, fmt.Errorf("%w: %d requests waiting", sched.ErrShedding, a.maxQueued)
	}
	p := &sched.Packet{Flow: flow, Length: cost, Payload: t}
	if err := a.rt.Enqueue(p); err != nil {
		a.mu.Unlock()
		return nil, err
	}
	a.queued++
	a.dispatchLocked()
	a.mu.Unlock()
	return t, nil
}

// Admit is Submit + Wait: it blocks until the request is dispatched in
// fair order (returning a ticket whose Finish must be called) or ctx
// expires (returning ctx's error).
func (a *Admitter) Admit(ctx context.Context, flow int, cost float64) (*Ticket, error) {
	t, err := a.Submit(flow, cost)
	if err != nil {
		return nil, err
	}
	if err := t.Wait(ctx); err != nil {
		return nil, err
	}
	return t, nil
}

// SetLimit changes the seat count; raising it dispatches immediately.
// Limit 0 pauses dispatch entirely (useful for deterministic tests and
// staged startup); negative limits are an ErrBadConfig.
func (a *Admitter) SetLimit(n int) error {
	if n < 0 {
		return fmt.Errorf("%w: admitter limit %d must be >= 0", sched.ErrBadConfig, n)
	}
	a.mu.Lock()
	a.limit = n
	a.dispatchLocked()
	a.mu.Unlock()
	return nil
}

// Queued returns the number of requests waiting for a seat.
func (a *Admitter) Queued() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.queued
}

// Executing returns the number of requests holding seats.
func (a *Admitter) Executing() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.executing
}

// Close stops intake (Submit/Admit fail with ErrClosed). Requests already
// waiting still dispatch in fair order as seats free; callers drain by
// finishing what they hold.
func (a *Admitter) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return fmt.Errorf("%w: already closed", sched.ErrClosed)
	}
	a.closed = true
	return nil
}

// dispatchLocked fills free seats from the fair queue. Canceled tickets
// pop and vanish without consuming a seat (their cost was charged to the
// flow's virtual time when queued — the price of O(1) cancellation in a
// tag-ordered queue; see DESIGN.md §16). A ticket staged by compaction is
// served before the queue — it was popped first in fair order. Packets
// enqueued on the runtime directly (not via Submit) carry no Ticket;
// dispatch drains and discards them — see Runtime.
func (a *Admitter) dispatchLocked() {
	for a.executing < a.limit && a.queued > 0 {
		var t *Ticket
		if a.staged != nil {
			t, a.staged = a.staged, nil
		} else {
			p, ok := a.rt.Dequeue()
			if !ok {
				return
			}
			var isTicket bool
			if t, isTicket = p.Payload.(*Ticket); !isTicket {
				continue // foreign packet: no seat, no queued slot to release
			}
		}
		a.queued--
		if !t.state.CompareAndSwap(tQueued, tDispatched) {
			a.canceled-- // canceled while waiting (possibly while staged)
			continue
		}
		a.seq++
		t.seq.Store(a.seq)
		a.executing++
		close(t.ready)
	}
}

// compactLocked drops dead tickets from the head of the fair queue once
// enough have accumulated: when the canceled backlog reaches the
// threshold, the queue's dead prefix is popped and discarded up to the
// first live ticket, which is staged for the next dispatch — so
// compaction can never reorder service. Dead tickets behind the staged
// one stay queued (accounted in a.canceled) until dispatch pops past
// them or a later compaction, after the staged ticket drains, resumes.
func (a *Admitter) compactLocked() {
	if a.staged != nil || a.canceled < a.compactAt {
		return
	}
	for a.staged == nil && a.canceled > 0 {
		p, ok := a.rt.Dequeue()
		if !ok {
			return
		}
		t, isTicket := p.Payload.(*Ticket)
		if !isTicket {
			continue
		}
		if t.state.Load() == tCanceled {
			a.queued--
			a.canceled--
			continue
		}
		a.staged = t
	}
}

// Wait blocks until the ticket is dispatched or ctx expires. On expiry
// the ticket is canceled if still queued; if dispatch won the race the
// seat is released again, so no capacity leaks. Cancellation is O(1) in
// the common case and leaves the dead ticket in the fair queue: its cost
// stays charged to the flow's virtual time, and it keeps its MaxQueued
// slot and its flow's QueuedBytes (so ReleaseFlow reports ErrFlowBusy)
// until dispatch pops past it — or until enough cancels accumulate that
// this one triggers compaction (see AdmitterConfig.CompactThreshold) and
// the dead head of the queue is dropped immediately.
func (t *Ticket) Wait(ctx context.Context) error {
	select {
	case <-t.ready:
		return nil
	case <-ctx.Done():
	}
	if t.state.CompareAndSwap(tQueued, tCanceled) {
		a := t.a
		a.mu.Lock()
		a.canceled++
		a.compactLocked()
		a.mu.Unlock()
		return ctx.Err()
	}
	// Dispatch won the race: the caller is abandoning an admitted
	// request, so release the seat.
	<-t.ready
	_ = t.Finish()
	return ctx.Err()
}

// Flow returns the ticket's flow.
func (t *Ticket) Flow() int { return t.flow }

// Cost returns the ticket's cost.
func (t *Ticket) Cost() float64 { return t.cost }

// Seq returns the dispatch sequence number (1-based, total order across
// the admitter), or 0 if not dispatched yet.
func (t *Ticket) Seq() int64 { return t.seq.Load() }

// Running reports whether the ticket currently holds a seat.
func (t *Ticket) Running() bool { return t.state.Load() == tDispatched }

// Finish releases the ticket's seat and dispatches the next request.
// Finishing a ticket that is not running fails with ErrBadState (double
// finish, never-admitted, canceled).
func (t *Ticket) Finish() error {
	if !t.state.CompareAndSwap(tDispatched, tFinished) {
		return fmt.Errorf("%w: ticket for flow %d is not running", sched.ErrBadState, t.flow)
	}
	a := t.a
	a.mu.Lock()
	a.executing--
	a.dispatchLocked()
	a.mu.Unlock()
	return nil
}
