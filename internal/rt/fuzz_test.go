package rt_test

import (
	"testing"

	_ "repro/internal/core"
	"repro/internal/rt"
	"repro/internal/sched"
)

// FuzzShardMigration drives a random op stream — add, enqueue, dequeue,
// migrate, remove — against a small sharded runtime and checks the
// conservation and placement invariants after every program: the shard
// assignment is always in range, the per-flow ledger matches the packets
// the driver actually pushed and popped, and a full drain leaves nothing
// stranded (a migration must never lose or duplicate a packet).
func FuzzShardMigration(f *testing.F) {
	f.Add(uint8(2), []byte{0x00, 0x11, 0x12, 0x23, 0x31})
	f.Add(uint8(1), []byte{0x00, 0x10, 0x10, 0x20, 0x40})
	f.Add(uint8(4), []byte{0x00, 0x01, 0x02, 0x03, 0x10, 0x11, 0x12, 0x13, 0x37, 0x3f, 0x20, 0x21, 0x22, 0x23})
	f.Add(uint8(3), []byte{0x07, 0x17, 0x47, 0x07, 0x17, 0x37, 0x27})
	f.Fuzz(func(t *testing.T, shards uint8, ops []byte) {
		n := int(shards)%4 + 1
		r, err := rt.New("sfq", sched.WithShards(n), sched.WithClock(&sched.ManualClock{}))
		if err != nil {
			t.Fatal(err)
		}
		const flows = 8
		var pushed, popped [flows]int64
		seq := int64(0)
		for _, b := range ops {
			op := int(b>>4) % 5
			arg := int(b & 0x0f)
			flow := arg % flows
			switch op {
			case 0:
				_ = r.AddFlow(flow, float64(1+arg))
			case 1:
				seq++
				if err := r.Enqueue(&sched.Packet{Flow: flow, Seq: seq, Length: float64(1 + arg)}); err == nil {
					pushed[flow]++
				}
			case 2:
				if p, ok := r.DequeueShard(arg % n); ok {
					popped[p.Flow]++
				}
			case 3:
				_ = r.MigrateFlow(flow, arg/flows*(n-1)) // dst 0 or n-1
			case 4:
				_ = r.RemoveFlow(flow)
			}
			// Placement invariant: a registered flow's live shard is
			// always a real shard.
			if s, err := r.FlowShard(flow); err == nil && (s < 0 || s >= n) {
				t.Fatalf("flow %d on shard %d of %d", flow, s, n)
			}
		}
		// Drain everything and settle the books.
		for {
			p, ok := r.Dequeue()
			if !ok {
				break
			}
			popped[p.Flow]++
		}
		if got := r.Len(); got != 0 {
			t.Fatalf("Len = %d after full drain", got)
		}
		for fl := 0; fl < flows; fl++ {
			if pushed[fl] != popped[fl] {
				t.Fatalf("flow %d: pushed %d, popped %d", fl, pushed[fl], popped[fl])
			}
			acct := r.FlowAccount(fl)
			if acct.Enqueued != pushed[fl] || acct.Dequeued != popped[fl] {
				t.Fatalf("flow %d: ledger %+v, driver %d/%d", fl, acct, pushed[fl], popped[fl])
			}
			if acct.EnqueuedBytes != acct.DequeuedBytes {
				t.Fatalf("flow %d: %v bytes in, %v out", fl, acct.EnqueuedBytes, acct.DequeuedBytes)
			}
		}
	})
}
