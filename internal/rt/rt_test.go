package rt_test

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	_ "repro/internal/core"
	"repro/internal/rt"
	"repro/internal/sched"
)

func mustRuntime(t *testing.T, name string, opts ...sched.Option) *rt.Runtime {
	t.Helper()
	r, err := rt.New(name, opts...)
	if err != nil {
		t.Fatalf("rt.New(%q): %v", name, err)
	}
	return r
}

func TestRuntimeBasics(t *testing.T) {
	clock := &sched.ManualClock{}
	r := mustRuntime(t, "sfq", sched.WithClock(clock), sched.WithShards(1))
	if r.Name() != "sfq" || r.Shards() != 1 {
		t.Fatalf("Name/Shards = %q/%d", r.Name(), r.Shards())
	}
	if !r.PoolSafe() {
		t.Fatal("sfq runtime should be pool-safe")
	}
	if err := r.Enqueue(&sched.Packet{Flow: 7, Length: 10}); !errors.Is(err, sched.ErrUnknownFlow) {
		t.Fatalf("enqueue unregistered flow: %v", err)
	}
	if err := r.AddFlow(7, 1); err != nil {
		t.Fatal(err)
	}
	clock.Set(1)
	p := &sched.Packet{Flow: 7, Length: 10}
	if err := r.Enqueue(p); err != nil {
		t.Fatal(err)
	}
	if p.Arrival != 1 {
		t.Fatalf("Arrival = %v, want clock reading 1", p.Arrival)
	}
	if r.Len() != 1 || r.QueuedBytes(7) != 10 {
		t.Fatalf("Len/QueuedBytes = %d/%v", r.Len(), r.QueuedBytes(7))
	}
	if err := r.RemoveFlow(7); !errors.Is(err, sched.ErrFlowBusy) {
		t.Fatalf("remove backlogged flow: %v", err)
	}
	got, ok := r.Dequeue()
	if !ok || got != p {
		t.Fatalf("Dequeue = %v/%v", got, ok)
	}
	acct := r.FlowAccount(7)
	if acct.Enqueued != 1 || acct.Dequeued != 1 || acct.EnqueuedBytes != 10 || acct.DequeuedBytes != 10 {
		t.Fatalf("ledger %+v", acct)
	}
	if err := r.RemoveFlow(7); err != nil {
		t.Fatal(err)
	}

	if _, err := rt.New("sfq", sched.WithShards(-1)); !errors.Is(err, sched.ErrBadConfig) {
		t.Fatalf("negative shards: %v", err)
	}
	if _, err := rt.New("no-such-discipline"); !errors.Is(err, sched.ErrBadConfig) {
		t.Fatalf("unknown discipline: %v", err)
	}
}

// TestShardedConservation is the differential pin of satellite 4: for every
// shard count from 1 to GOMAXPROCS, concurrent producers and per-shard
// consumers hammer the runtime and per-flow byte conservation must hold
// exactly — every offered byte is queued, shed with a counted refusal, or
// still in flight, and every queued byte reappears on dequeue. Run under
// -race this also exercises the lock-free shard-assignment fast path.
func TestShardedConservation(t *testing.T) {
	// Cover 1..GOMAXPROCS shards, but always at least 4 — on a small
	// machine the goroutines time-slice, which still exercises every
	// cross-shard interleaving the race detector can see.
	maxShards := runtime.GOMAXPROCS(0)
	if maxShards < 4 {
		maxShards = 4
	}
	if maxShards > 8 {
		maxShards = 8
	}
	for shards := 1; shards <= maxShards; shards++ {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			t.Parallel()
			r := mustRuntime(t, "sfq", sched.WithShards(shards), sched.WithClock(rt.WallClock()))
			const flows = 12
			perFlow := 400
			if testing.Short() {
				perFlow = 100
			}
			for f := 0; f < flows; f++ {
				if err := r.AddFlow(f, float64(1+f%3)); err != nil {
					t.Fatal(err)
				}
			}
			var wg sync.WaitGroup
			var sent [flows]int64
			for f := 0; f < flows; f++ {
				wg.Add(1)
				go func(f int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(f)))
					batch := make([]*sched.Packet, 0, 8)
					for i := 0; i < perFlow; {
						batch = batch[:0]
						n := 1 + rng.Intn(8)
						if i+n > perFlow {
							n = perFlow - i
						}
						for j := 0; j < n; j++ {
							batch = append(batch, &sched.Packet{Flow: f, Seq: int64(i + j), Length: float64(1 + rng.Intn(100))})
						}
						acc, err := r.EnqueueBatch(batch)
						if err != nil {
							t.Errorf("flow %d: batch enqueue: %v", f, err)
							return
						}
						sent[f] += int64(acc)
						i += n
					}
				}(f)
			}
			// Per-shard consumers drain concurrently with the producers.
			done := make(chan struct{})
			var cg sync.WaitGroup
			for s := 0; s < shards; s++ {
				cg.Add(1)
				go func(s int) {
					defer cg.Done()
					buf := make([]*sched.Packet, 16)
					for {
						n := r.DequeueBatch(s, buf)
						if n == 0 {
							select {
							case <-done:
								// Producers finished: one final sweep.
								for r.DequeueBatch(s, buf) > 0 {
								}
								return
							default:
							}
						}
					}
				}(s)
			}
			wg.Wait()
			close(done)
			cg.Wait()
			if n := r.Len(); n != 0 {
				t.Fatalf("%d packets stranded", n)
			}
			for f := 0; f < flows; f++ {
				acct := r.FlowAccount(f)
				if acct.Enqueued != sent[f] {
					t.Errorf("flow %d: ledger says %d enqueued, producer sent %d", f, acct.Enqueued, sent[f])
				}
				if acct.Enqueued != acct.Dequeued {
					t.Errorf("flow %d: %d enqueued != %d dequeued with empty queue", f, acct.Enqueued, acct.Dequeued)
				}
				if acct.EnqueuedBytes != acct.DequeuedBytes {
					t.Errorf("flow %d: %v bytes in != %v bytes out", f, acct.EnqueuedBytes, acct.DequeuedBytes)
				}
				if acct.Shed != 0 {
					t.Errorf("flow %d: unexpected sheds %d (no limit set)", f, acct.Shed)
				}
			}
		})
	}
}

// TestShedAccounting pins the bounded-queue contract: refusals are loud
// (ErrShedding) and counted, and offered = enqueued + shed exactly.
func TestShedAccounting(t *testing.T) {
	clock := &sched.ManualClock{}
	r := mustRuntime(t, "sfq", sched.WithClock(clock))
	r.SetQueueLimit(3)
	if err := r.AddFlow(1, 1); err != nil {
		t.Fatal(err)
	}
	offered, accepted, shed := 0, 0, 0
	for i := 0; i < 10; i++ {
		offered++
		err := r.Enqueue(&sched.Packet{Flow: 1, Seq: int64(i), Length: 5})
		switch {
		case err == nil:
			accepted++
		case errors.Is(err, sched.ErrShedding):
			shed++
		default:
			t.Fatalf("enqueue %d: %v", i, err)
		}
	}
	if accepted != 3 || shed != 7 {
		t.Fatalf("accepted/shed = %d/%d, want 3/7", accepted, shed)
	}
	acct := r.FlowAccount(1)
	if int(acct.Enqueued) != accepted || int(acct.Shed) != shed {
		t.Fatalf("ledger %+v disagrees with caller counts %d/%d", acct, accepted, shed)
	}
	if acct.ShedBytes != float64(shed)*5 {
		t.Fatalf("ShedBytes = %v", acct.ShedBytes)
	}
	// Draining frees capacity again.
	if _, ok := r.Dequeue(); !ok {
		t.Fatal("dequeue failed")
	}
	if err := r.Enqueue(&sched.Packet{Flow: 1, Seq: 99, Length: 5}); err != nil {
		t.Fatalf("enqueue after drain: %v", err)
	}
	r.SetQueueLimit(0)
	if err := r.Enqueue(&sched.Packet{Flow: 1, Seq: 100, Length: 5}); err != nil {
		t.Fatalf("enqueue after limit removed: %v", err)
	}
}

// TestZeroAllocSteadyState pins the data path's allocation budget: with a
// pool-safe discipline and the caller reusing dequeued packets, batched
// enqueue/dequeue allocates nothing.
func TestZeroAllocSteadyState(t *testing.T) {
	clock := &sched.ManualClock{}
	r := mustRuntime(t, "sfq", sched.WithClock(clock))
	for f := 0; f < 4; f++ {
		if err := r.AddFlow(f, 1); err != nil {
			t.Fatal(err)
		}
	}
	const batch = 16
	pkts := make([]*sched.Packet, batch)
	buf := make([]*sched.Packet, batch)
	for i := range pkts {
		pkts[i] = &sched.Packet{Flow: i % 4, Length: 100}
	}
	// Warm up once (lazy map/heap growth), then measure.
	step := func() {
		clock.Advance(1)
		if n, err := r.EnqueueBatch(pkts); err != nil || n != batch {
			t.Fatalf("enqueue batch: n=%d err=%v", n, err)
		}
		if n := r.DequeueBatch(0, buf); n != batch {
			t.Fatalf("dequeue batch: n=%d", n)
		}
		copy(pkts, buf)
	}
	step()
	if avg := testing.AllocsPerRun(100, step); avg != 0 {
		t.Fatalf("steady state allocates %v allocs per batch, want 0", avg)
	}
}

func TestMigrateFlow(t *testing.T) {
	clock := &sched.ManualClock{}
	r := mustRuntime(t, "sfq", sched.WithShards(4), sched.WithClock(clock))
	if err := r.AddFlow(1, 2); err != nil {
		t.Fatal(err)
	}
	home := r.ShardOf(1)
	if got, err := r.FlowShard(1); err != nil || got != home {
		t.Fatalf("FlowShard = %d/%v, want %d", got, err, home)
	}

	// Error cases first: bad destination, unknown flow.
	if err := r.MigrateFlow(1, 99); !errors.Is(err, sched.ErrBadConfig) {
		t.Fatalf("out-of-range dst: %v", err)
	}
	if err := r.MigrateFlow(42, 0); !errors.Is(err, sched.ErrUnknownFlow) {
		t.Fatalf("unknown flow: %v", err)
	}

	// Idle migration moves the assignment immediately.
	dst := (home + 1) % 4
	if err := r.MigrateFlow(1, dst); err != nil {
		t.Fatal(err)
	}
	if got, _ := r.FlowShard(1); got != dst {
		t.Fatalf("after idle migrate: shard %d, want %d", got, dst)
	}
	if err := r.MigrateFlow(1, dst); err != nil {
		t.Fatalf("self-migration should be a no-op: %v", err)
	}

	// Backlogged migration: arrivals switch shards at once, the old shard
	// drains its backlog and auto-unregisters the flow.
	clock.Set(1)
	old := &sched.Packet{Flow: 1, Seq: 0, Length: 10}
	if err := r.Enqueue(old); err != nil {
		t.Fatal(err)
	}
	dst2 := (dst + 1) % 4
	if err := r.MigrateFlow(1, dst2); err != nil {
		t.Fatalf("backlogged migrate: %v", err)
	}
	if got, _ := r.FlowShard(1); got != dst2 {
		t.Fatalf("after backlogged migrate: shard %d, want %d", got, dst2)
	}
	fresh := &sched.Packet{Flow: 1, Seq: 1, Length: 20}
	if err := r.Enqueue(fresh); err != nil {
		t.Fatal(err)
	}
	// Migrating back onto the still-draining source shard is refused.
	if err := r.MigrateFlow(1, dst); !errors.Is(err, sched.ErrFlowDraining) {
		t.Fatalf("migrate onto draining shard: %v", err)
	}
	if p, ok := r.DequeueShard(dst); !ok || p != old {
		t.Fatalf("old shard backlog: %v/%v", p, ok)
	}
	if p, ok := r.DequeueShard(dst2); !ok || p != fresh {
		t.Fatalf("new shard arrival: %v/%v", p, ok)
	}
	// Drained now: the old shard accepted the flow back.
	if err := r.MigrateFlow(1, dst); err != nil {
		t.Fatalf("migrate after drain: %v", err)
	}
	// Conservation held across the migration.
	acct := r.FlowAccount(1)
	if acct.Enqueued != 2 || acct.Dequeued != 2 || acct.EnqueuedBytes != 30 || acct.DequeuedBytes != 30 {
		t.Fatalf("ledger across migration %+v", acct)
	}
}

func TestRuntimeClose(t *testing.T) {
	clock := &sched.ManualClock{}
	r := mustRuntime(t, "sfq", sched.WithClock(clock))
	if err := r.AddFlow(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := r.Enqueue(&sched.Packet{Flow: 1, Length: 10}); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if !r.Closed() {
		t.Fatal("Closed() = false after Close")
	}
	if err := r.Enqueue(&sched.Packet{Flow: 1, Length: 10}); !errors.Is(err, sched.ErrClosed) {
		t.Fatalf("enqueue after close: %v", err)
	}
	if n, err := r.EnqueueBatch([]*sched.Packet{{Flow: 1, Length: 10}}); n != 0 || !errors.Is(err, sched.ErrClosed) {
		t.Fatalf("batch enqueue after close: n=%d err=%v", n, err)
	}
	if err := r.AddFlow(2, 1); !errors.Is(err, sched.ErrClosed) {
		t.Fatalf("add flow after close: %v", err)
	}
	if err := r.MigrateFlow(1, 0); !errors.Is(err, sched.ErrClosed) {
		t.Fatalf("migrate after close: %v", err)
	}
	// The backlog stays dequeueable so workers drain it.
	if _, ok := r.Dequeue(); !ok {
		t.Fatal("backlog not dequeueable after close")
	}
	if err := r.Close(); !errors.Is(err, sched.ErrClosed) {
		t.Fatalf("double close: %v", err)
	}
}

// TestRuntimeMonotoneClock pins the clamp: a clock that jumps backwards
// (NTP step, coarse timer) must never surface ErrTimeWentBack from the
// disciplines — the shard clamps time monotone instead.
func TestRuntimeMonotoneClock(t *testing.T) {
	clock := &sched.ManualClock{}
	r := mustRuntime(t, "sfq", sched.WithClock(clock))
	if err := r.AddFlow(1, 1); err != nil {
		t.Fatal(err)
	}
	clock.Set(10)
	if err := r.Enqueue(&sched.Packet{Flow: 1, Seq: 0, Length: 1}); err != nil {
		t.Fatal(err)
	}
	clock.Set(3) // time goes backwards
	p := &sched.Packet{Flow: 1, Seq: 1, Length: 1}
	if err := r.Enqueue(p); err != nil {
		t.Fatalf("enqueue after clock regression: %v", err)
	}
	if p.Arrival != 10 {
		t.Fatalf("Arrival = %v, want clamped 10", p.Arrival)
	}
	if _, ok := r.Dequeue(); !ok {
		t.Fatal("dequeue after clock regression")
	}
}

func TestEnqueueBatchPartialFailure(t *testing.T) {
	clock := &sched.ManualClock{}
	r := mustRuntime(t, "sfq", sched.WithShards(2), sched.WithClock(clock))
	if err := r.AddFlow(1, 1); err != nil {
		t.Fatal(err)
	}
	batch := []*sched.Packet{
		{Flow: 1, Seq: 0, Length: 5},
		{Flow: 9, Seq: 0, Length: 5}, // never registered
		{Flow: 1, Seq: 1, Length: 5},
	}
	n, err := r.EnqueueBatch(batch)
	if n != 2 {
		t.Fatalf("accepted %d, want 2 (failure mid-batch must not discard the rest)", n)
	}
	if !errors.Is(err, sched.ErrUnknownFlow) {
		t.Fatalf("first error: %v", err)
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
	// A batch larger than the stack scratch takes the heap-resolve path.
	big := make([]*sched.Packet, 129)
	for i := range big {
		big[i] = &sched.Packet{Flow: 1, Seq: int64(i + 2), Length: 1}
	}
	if n, err := r.EnqueueBatch(big); err != nil || n != len(big) {
		t.Fatalf("large batch: n=%d err=%v", n, err)
	}
}

// TestEnqueueBatchConcurrentFlowTableWriters is the lock-order regression
// pin: EnqueueBatch must never hold a shard mutex while waiting on the
// flow-table lock, or it deadlocks against AddFlow/RemoveFlow/MigrateFlow
// (which take the table lock first, then shard mutexes). Producers push
// batches spanning all shards — so a shard lock is held between
// consecutive packets — while writers churn the flow table; a watchdog
// fails loudly with stacks instead of hanging the suite if the inversion
// ever comes back.
func TestEnqueueBatchConcurrentFlowTableWriters(t *testing.T) {
	r := mustRuntime(t, "sfq", sched.WithShards(4), sched.WithClock(rt.WallClock()))
	const flows = 8
	for f := 0; f < flows; f++ {
		if err := r.AddFlow(f, 1); err != nil {
			t.Fatal(err)
		}
	}
	r.SetQueueLimit(1 << 14)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]*sched.Packet, 2*flows)
			for {
				select {
				case <-stop:
					return
				default:
				}
				batch := make([]*sched.Packet, flows)
				for f := range batch {
					batch[f] = &sched.Packet{Flow: f, Length: 1}
				}
				_, _ = r.EnqueueBatch(batch)
				for s := 0; s < r.Shards(); s++ {
					r.DequeueBatch(s, buf)
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = r.MigrateFlow(i%flows, i%r.Shards())
			extra := flows + i%4
			_ = r.AddFlow(extra, 1)
			_ = r.RemoveFlow(extra)
		}
	}()
	dur := 300 * time.Millisecond
	if testing.Short() {
		dur = 50 * time.Millisecond
	}
	time.Sleep(dur)
	close(stop)
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		buf := make([]byte, 1<<20)
		t.Fatalf("deadlock: EnqueueBatch vs flow-table writers\n%s", buf[:runtime.Stack(buf, true)])
	}
}
