package liveops_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/liveops"
	"repro/internal/sched"

	_ "repro/internal/core" // register sfq/hsfq
	_ "repro/internal/pifo" // register pifo-*/lstf/srpt/fifo+
)

// drive pushes a small deterministic 3-flow workload through s: n
// operations alternating bursts of enqueues with dequeues, leaving a
// backlog behind. Packet lengths and gaps vary per flow so tags differ.
func drive(t *testing.T, s sched.Interface, n int) {
	t.Helper()
	for f := 1; f <= 3; f++ {
		if err := s.AddFlow(f, float64(f)*100); err != nil {
			t.Fatalf("AddFlow(%d): %v", f, err)
		}
	}
	now := 0.0
	seq := make(map[int]int64)
	for i := 0; i < n; i++ {
		now += 0.001 * float64(i%7+1)
		f := i%3 + 1
		if i%4 == 3 {
			s.Dequeue(now)
			continue
		}
		seq[f]++
		p := &sched.Packet{Flow: f, Seq: seq[f], Length: float64(64 + (i*37)%1400), Arrival: now}
		if err := s.Enqueue(now, p); err != nil {
			t.Fatalf("Enqueue op %d: %v", i, err)
		}
	}
}

// popAll returns the full remaining service order as "flow/seq" strings.
func popAll(s sched.Interface) []string {
	var out []string
	now := 1e6
	for {
		p, ok := s.Dequeue(now)
		if !ok {
			return out
		}
		out = append(out, fmt.Sprintf("%d/%d/%g", p.Flow, p.Seq, p.Length))
	}
}

// mkNamed builds the named scheduler or fails the test.
func mkNamed(t *testing.T, name string, opts ...sched.Option) sched.Interface {
	t.Helper()
	s, err := sched.New(name, opts...)
	if err != nil {
		t.Fatalf("New(%q): %v", name, err)
	}
	return s
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	for _, name := range []string{"scfq", "sfq", "vclock", "edd", "drr", "fifo", "fairairport", "pifo-scfq", "lstf", "srpt"} {
		t.Run(name, func(t *testing.T) {
			src := mkNamed(t, name)
			drive(t, src, 200)
			snap := src.(sched.Snapshotter)

			data, err := liveops.Snapshot(snap)
			if err != nil {
				t.Fatalf("Snapshot: %v", err)
			}
			restored, err := liveops.Clone(snap, func() sched.Interface { return mkNamed(t, name) })
			if err != nil {
				t.Fatalf("Clone: %v", err)
			}

			// Marshal → Restore → Marshal is a fixed point.
			again, err := liveops.Snapshot(restored.(sched.Snapshotter))
			if err != nil {
				t.Fatalf("re-Snapshot: %v", err)
			}
			if !bytes.Equal(data, again) {
				t.Fatalf("snapshot not a fixed point:\n  %s\n  %s", data, again)
			}

			// The replica continues bit-identically.
			want, got := popAll(src), popAll(restored)
			if len(want) == 0 {
				t.Fatal("workload left no backlog; test is vacuous")
			}
			if fmt.Sprint(want) != fmt.Sprint(got) {
				t.Fatalf("continuation diverged:\n  want %v\n  got  %v", want, got)
			}
		})
	}
}

func TestRestoreRejects(t *testing.T) {
	src := sched.NewSCFQ()
	drive(t, src, 100)
	data, err := liveops.Snapshot(src)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("kind mismatch", func(t *testing.T) {
		if err := liveops.Restore(data, sched.NewVirtualClock()); !errors.Is(err, sched.ErrBadState) {
			t.Fatalf("want ErrBadState, got %v", err)
		}
	})
	t.Run("digest mismatch", func(t *testing.T) {
		bad := bytes.Replace(data, []byte(`"v":`), []byte(`"w":`), 1)
		if bytes.Equal(bad, data) {
			t.Fatal("mutation did not apply")
		}
		if err := liveops.Restore(bad, sched.NewSCFQ()); !errors.Is(err, sched.ErrBadState) {
			t.Fatalf("want ErrBadState, got %v", err)
		}
	})
	t.Run("version mismatch", func(t *testing.T) {
		bad := bytes.Replace(data, []byte(`"version":1`), []byte(`"version":9`), 1)
		if err := liveops.Restore(bad, sched.NewSCFQ()); !errors.Is(err, sched.ErrBadState) {
			t.Fatalf("want ErrBadState, got %v", err)
		}
	})
	t.Run("non-empty target", func(t *testing.T) {
		busy := sched.NewSCFQ()
		drive(t, busy, 50)
		if err := liveops.Restore(data, busy); !errors.Is(err, sched.ErrBadState) {
			t.Fatalf("want ErrBadState, got %v", err)
		}
	})
}

func TestPayloadSidecar(t *testing.T) {
	src := sched.NewSCFQ()
	if err := src.AddFlow(1, 100); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		p := &sched.Packet{Flow: 1, Seq: int64(i), Length: 100, Payload: fmt.Sprintf("frame-%d", i)}
		if err := src.Enqueue(0, p); err != nil {
			t.Fatal(err)
		}
	}
	restored, err := liveops.Clone(src, func() sched.Interface { return sched.NewSCFQ() })
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		p, ok := restored.Dequeue(1)
		if !ok {
			t.Fatalf("pop %d: empty", i)
		}
		if want := fmt.Sprintf("frame-%d", i); p.Payload != want {
			t.Fatalf("pop %d payload = %v, want %v", i, p.Payload, want)
		}
	}
}

func TestSwapperSnapshotRestoreTransparent(t *testing.T) {
	baseline := sched.NewSCFQ()
	drive(t, baseline, 200)
	want := popAll(baseline)

	for _, atOp := range []uint64{1, 17, 50, 149} {
		sw := liveops.NewSwapper(sched.NewSCFQ(), liveops.Action{
			AtOp: atOp,
			Do:   liveops.SnapshotRestore(func() sched.Interface { return sched.NewSCFQ() }),
		})
		drive(t, sw, 200)
		if sw.Err != nil {
			t.Fatalf("atOp=%d: action failed: %v", atOp, sw.Err)
		}
		if sw.Ops() <= atOp {
			t.Fatalf("atOp=%d: only %d ops counted; action never fired", atOp, sw.Ops())
		}
		if got := popAll(sw); fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("atOp=%d: schedule diverged after failover:\n  want %v\n  got  %v", atOp, want, got)
		}
	}
}

func TestHotSwapConserves(t *testing.T) {
	src := mkNamed(t, "sfq")
	drive(t, src, 200)
	wantLen := src.Len()
	wantBytes := map[int]float64{}
	for f := 1; f <= 3; f++ {
		wantBytes[f] = src.QueuedBytes(f)
	}

	dst := mkNamed(t, "lstf")
	moved, err := liveops.HotSwap(1e5, src, dst)
	if err != nil {
		t.Fatalf("HotSwap: %v", err)
	}
	if moved != wantLen || dst.Len() != wantLen || src.Len() != 0 {
		t.Fatalf("moved %d packets, dst holds %d, src holds %d; want %d/%d/0", moved, dst.Len(), src.Len(), wantLen, wantLen)
	}
	for f := 1; f <= 3; f++ {
		if got := dst.QueuedBytes(f); got != wantBytes[f] {
			t.Fatalf("flow %d: %v bytes after swap, want %v", f, got, wantBytes[f])
		}
	}
	// Per-flow FIFO survives the retag.
	lastSeq := map[int]int64{}
	for {
		p, ok := dst.Dequeue(1e5)
		if !ok {
			break
		}
		if p.Seq <= lastSeq[p.Flow] {
			t.Fatalf("flow %d served seq %d after %d", p.Flow, p.Seq, lastSeq[p.Flow])
		}
		lastSeq[p.Flow] = p.Seq
	}
}

func TestDrainFlow(t *testing.T) {
	s := sched.NewSCFQ()
	if err := s.AddFlow(1, 100); err != nil {
		t.Fatal(err)
	}
	if err := s.Enqueue(0, &sched.Packet{Flow: 1, Length: 100}); err != nil {
		t.Fatal(err)
	}
	if err := s.DrainFlow(1); err != nil {
		t.Fatalf("DrainFlow: %v", err)
	}
	if err := s.Enqueue(0.1, &sched.Packet{Flow: 1, Length: 100}); !errors.Is(err, sched.ErrFlowDraining) {
		t.Fatalf("enqueue on draining flow: want ErrFlowDraining, got %v", err)
	}
	if _, ok := s.Dequeue(1); !ok {
		t.Fatal("drain left the queued packet unserved")
	}
	// The backlog emptied: the flow is gone.
	if err := s.Enqueue(2, &sched.Packet{Flow: 1, Length: 100}); !errors.Is(err, sched.ErrUnknownFlow) {
		t.Fatalf("want ErrUnknownFlow after drain completes, got %v", err)
	}
}
