// Package liveops implements live operations on running schedulers:
// versioned, digest-pinned snapshot/restore envelopes (fail over a link
// into a fresh process without dropping its schedule), payload sidecars,
// mid-run scheduler replacement (Swapper), and discipline hot-swap that
// retags a live backlog through a new discipline's rank function.
//
// The paper's self-clocked design is what makes all of this well-posed:
// SFQ's fairness (Theorem 1) holds for any service the scheduler
// receives, so pausing a link at an arbitrary event, moving its state,
// and resuming — or changing weights mid-backlog — never breaks the
// post-change fairness bounds. The snapshot machinery itself lives with
// each discipline (sched.Snapshotter); this package wraps it in a
// self-validating envelope and the operational choreography around it.
package liveops

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/sched"
)

// Version is the envelope format version this package writes.
const Version = 1

// Envelope is the on-disk snapshot format: a version, the scheduler's
// state kind (restore refuses a mismatched discipline), the SHA-256 of
// the state bytes (restore refuses tampering or truncation before the
// per-discipline validators even run), and the state itself.
type Envelope struct {
	Version int    `json:"version"`
	Kind    string `json:"kind"`
	SHA256  string `json:"sha256"`
	// Time is the wall-clock instant of the capture (0 when unknown).
	// Discipline state contains wall-clock quantities — monotonicity
	// guards, Virtual Clock EAT chains, EDD deadlines — so a process
	// restoring into a fresh clock must resume its time base at or after
	// Time (cmd/sfqsim offsets its whole event script by it).
	Time  float64         `json:"time,omitempty"`
	State json.RawMessage `json:"state"`
}

// Snapshot captures s into a self-validating envelope with no recorded
// capture time — for restores that keep the original time base (failover
// inside one simulation). Payloads of queued packets are NOT captured —
// carry them with CapturePayloads.
func Snapshot(s sched.Snapshotter) ([]byte, error) { return SnapshotAt(0, s) }

// SnapshotAt is Snapshot with the capture instant recorded in the
// envelope, for restores into a process whose clock restarts.
func SnapshotAt(now float64, s sched.Snapshotter) ([]byte, error) {
	state, err := s.MarshalState()
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(state)
	return json.Marshal(Envelope{
		Version: Version,
		Kind:    s.StateKind(),
		SHA256:  hex.EncodeToString(sum[:]),
		Time:    now,
		State:   state,
	})
}

// Peek decodes and digest-checks an envelope without restoring it, for
// callers that need its metadata (Kind, Time) before building a scheduler.
func Peek(data []byte) (*Envelope, error) {
	var env Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("%w: envelope: %v", sched.ErrBadState, err)
	}
	if env.Version != Version {
		return nil, fmt.Errorf("%w: envelope version %d, want %d", sched.ErrBadState, env.Version, Version)
	}
	sum := sha256.Sum256(env.State)
	if hex.EncodeToString(sum[:]) != env.SHA256 {
		return nil, fmt.Errorf("%w: envelope digest mismatch", sched.ErrBadState)
	}
	return &env, nil
}

// Restore loads an envelope produced by Snapshot into s, which must be a
// freshly constructed scheduler of the same kind. The envelope's version,
// kind, and digest are checked before any state reaches the scheduler;
// every failure wraps sched.ErrBadState and leaves s unusable (discard
// it), never holding a half-loaded schedule it would serve from.
func Restore(data []byte, s sched.Snapshotter) error {
	var env Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return fmt.Errorf("%w: envelope: %v", sched.ErrBadState, err)
	}
	if env.Version != Version {
		return fmt.Errorf("%w: envelope version %d, want %d", sched.ErrBadState, env.Version, Version)
	}
	if env.Kind != s.StateKind() {
		return fmt.Errorf("%w: envelope kind %q does not match scheduler kind %q", sched.ErrBadState, env.Kind, s.StateKind())
	}
	sum := sha256.Sum256(env.State)
	if hex.EncodeToString(sum[:]) != env.SHA256 {
		return fmt.Errorf("%w: envelope digest mismatch", sched.ErrBadState)
	}
	return s.RestoreState(env.State)
}

// CapturePayloads collects the queued packets' opaque payloads in the
// scheduler's canonical VisitQueued order — the sidecar that travels next
// to a snapshot (payloads are process-local values, so the envelope
// itself never contains them).
func CapturePayloads(s sched.Snapshotter) []any {
	var out []any
	s.VisitQueued(func(p *sched.Packet) { out = append(out, p.Payload) })
	return out
}

// AttachPayloads reattaches a CapturePayloads sidecar onto a restored
// scheduler's queued packets, in the same canonical order. The counts
// must match exactly.
func AttachPayloads(s sched.Snapshotter, payloads []any) error {
	i := 0
	s.VisitQueued(func(p *sched.Packet) {
		if i < len(payloads) {
			p.Payload = payloads[i]
		}
		i++
	})
	if i != len(payloads) {
		return fmt.Errorf("%w: %d payloads for %d queued packets", sched.ErrBadState, len(payloads), i)
	}
	return nil
}

// Clone snapshots src and restores it — state, then payload sidecar —
// into a fresh scheduler built by mk, returning the replica. This is the
// kill-and-restore failover primitive: the replica continues the schedule
// bit-identically (the conformance suite pins this for every discipline).
func Clone(src sched.Snapshotter, mk func() sched.Interface) (sched.Interface, error) {
	data, err := Snapshot(src)
	if err != nil {
		return nil, err
	}
	payloads := CapturePayloads(src)
	fresh := mk()
	snap, ok := fresh.(sched.Snapshotter)
	if !ok {
		return nil, fmt.Errorf("%w: replacement %T does not support snapshots", sched.ErrBadState, fresh)
	}
	if err := Restore(data, snap); err != nil {
		return nil, err
	}
	if err := AttachPayloads(snap, payloads); err != nil {
		return nil, err
	}
	return fresh, nil
}

// HotSwap moves a running scheduler's registered flows and live backlog
// from src into dst, retagging every queued packet through dst's own
// rank computation: packets leave src in its service order (per-flow FIFO
// by construction) and re-enter dst as fresh arrivals at time now, so
// per-flow order, packet counts, and bytes are conserved while the
// cross-flow schedule becomes dst's. For a PIFO destination the per-flow
// monotonizing clamp is exactly the path that absorbs rank order the new
// discipline would not itself have produced. Returns the number of
// packets moved.
//
// src is left empty but registered; discard it. On error dst may hold a
// partial backlog — discard both.
func HotSwap(now float64, src, dst sched.Interface) (int, error) {
	fl, ok := src.(sched.FlowLister)
	if !ok {
		return 0, fmt.Errorf("%w: source %T cannot enumerate flows", sched.ErrBadState, src)
	}
	for _, info := range fl.ListFlows() {
		if err := dst.AddFlow(info.Flow, info.Weight); err != nil {
			return 0, err
		}
	}
	moved := 0
	for {
		p, ok := src.Dequeue(now)
		if !ok {
			return moved, nil
		}
		if err := dst.Enqueue(now, p); err != nil {
			return moved, err
		}
		moved++
	}
}
