package liveops

import (
	"testing"

	"repro/internal/sched"
)

// FuzzSnapshotRestore throws arbitrary bytes at Restore. Valid envelopes
// (the seeds, plus whatever mutations keep the digest intact) must load
// into a scheduler that stays fully drivable and re-snapshotable; invalid
// bytes must be rejected cleanly — never a panic, never a scheduler that
// accepts a half-loaded schedule.
func FuzzSnapshotRestore(f *testing.F) {
	seed := sched.NewSCFQ()
	if err := seed.AddFlow(1, 100); err != nil {
		f.Fatal(err)
	}
	if err := seed.AddFlow(2, 300); err != nil {
		f.Fatal(err)
	}
	now := 0.0
	for i := 0; i < 40; i++ {
		now += 0.002
		if i%5 == 4 {
			seed.Dequeue(now)
			continue
		}
		p := &sched.Packet{Flow: i%2 + 1, Seq: int64(i), Length: float64(100 + i*13), Arrival: now}
		if err := seed.Enqueue(now, p); err != nil {
			f.Fatal(err)
		}
		if i == 10 || i == 25 || i == 38 {
			data, err := Snapshot(seed)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(data)
		}
	}
	f.Add([]byte(`{"version":1,"kind":"sched/scfq","sha256":"","state":{}}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s := sched.NewSCFQ()
		if Restore(data, s) != nil {
			return
		}
		// A restore that succeeded must leave a coherent scheduler: drive
		// it and snapshot it again.
		if err := s.AddFlow(99, 50); err != nil {
			t.Fatalf("AddFlow on restored scheduler: %v", err)
		}
		tick := 1e9
		for i := 0; i < 8; i++ {
			tick += 0.001
			p := &sched.Packet{Flow: 99, Seq: int64(i), Length: 200, Arrival: tick}
			if err := s.Enqueue(tick, p); err != nil {
				t.Fatalf("Enqueue on restored scheduler: %v", err)
			}
		}
		for {
			if _, ok := s.Dequeue(tick); !ok {
				break
			}
		}
		again, err := Snapshot(s)
		if err != nil {
			t.Fatalf("re-Snapshot after restore+drive: %v", err)
		}
		if err := Restore(again, sched.NewSCFQ()); err != nil {
			t.Fatalf("second-generation restore: %v", err)
		}
	})
}
