package liveops

import (
	"fmt"

	"repro/internal/sched"
)

// Action is a scheduled intervention on a running Swapper: after the
// AtOp'th schedule operation completes, Do receives the current inner
// scheduler and returns its replacement (or the same scheduler, for
// in-place mutations like SetWeight). A returned error stops all further
// actions and is surfaced on Swapper.Err; the inner scheduler keeps
// running unreplaced.
type Action struct {
	AtOp uint64
	Do   func(now float64, inner sched.Interface) (sched.Interface, error)
}

// SnapshotRestore is the kill-and-restore Action body: snapshot the inner
// scheduler, discard it, and continue on a fresh instance (built by mk)
// restored from the envelope — payload sidecar included.
func SnapshotRestore(mk func() sched.Interface) func(float64, sched.Interface) (sched.Interface, error) {
	return func(_ float64, inner sched.Interface) (sched.Interface, error) {
		snap, ok := inner.(sched.Snapshotter)
		if !ok {
			return nil, fmt.Errorf("%w: %T does not support snapshots", sched.ErrBadState, inner)
		}
		return Clone(snap, mk)
	}
}

// Swap is the discipline hot-swap Action body: move the inner scheduler's
// flows and backlog into a fresh scheduler built by mk (see HotSwap) and
// continue on it.
func Swap(mk func() sched.Interface) func(float64, sched.Interface) (sched.Interface, error) {
	return func(now float64, inner sched.Interface) (sched.Interface, error) {
		dst := mk()
		if _, err := HotSwap(now, inner, dst); err != nil {
			return nil, err
		}
		return dst, nil
	}
}

// Swapper wraps a scheduler and fires Actions at chosen points of the
// operation stream, transparently to the driver: a link (or conformance
// harness) scheduling through a Swapper cannot tell whether it is still
// talking to the original scheduler or to a restored/hot-swapped
// replacement — which is precisely the property the liveops tests pin.
//
// Operations are counted like the conformance recorder counts events:
// every successful Enqueue and every Dequeue call (an empty Dequeue is a
// busy-period boundary, a legitimate failover point). Actions fire
// immediately after the operation with their AtOp count completes.
type Swapper struct {
	Inner   sched.Interface
	Actions []Action

	// Err records the first action failure; once set, no further actions
	// fire. The inner scheduler continues undisturbed.
	Err error

	ops uint64
}

// NewSwapper wraps inner with the given actions.
func NewSwapper(inner sched.Interface, actions ...Action) *Swapper {
	return &Swapper{Inner: inner, Actions: actions}
}

// Ops returns the number of schedule operations counted so far.
func (s *Swapper) Ops() uint64 { return s.ops }

func (s *Swapper) fire(now float64) {
	if s.Err != nil {
		return
	}
	for i := range s.Actions {
		a := &s.Actions[i]
		if a.Do == nil || a.AtOp != s.ops {
			continue
		}
		do := a.Do
		a.Do = nil // one-shot
		next, err := do(now, s.Inner)
		if err != nil {
			s.Err = err
			return
		}
		s.Inner = next
	}
}

// AddFlow delegates to the inner scheduler.
func (s *Swapper) AddFlow(flow int, weight float64) error { return s.Inner.AddFlow(flow, weight) }

// RemoveFlow delegates to the inner scheduler.
func (s *Swapper) RemoveFlow(flow int) error { return s.Inner.RemoveFlow(flow) }

// Enqueue delegates to the inner scheduler, counting successful enqueues
// as operations.
func (s *Swapper) Enqueue(now float64, p *sched.Packet) error {
	if err := s.Inner.Enqueue(now, p); err != nil {
		return err
	}
	s.ops++
	s.fire(now)
	return nil
}

// Dequeue delegates to the inner scheduler; every call counts as an
// operation (an empty pop marks a busy-period end).
func (s *Swapper) Dequeue(now float64) (*sched.Packet, bool) {
	p, ok := s.Inner.Dequeue(now)
	s.ops++
	s.fire(now)
	return p, ok
}

// Len delegates to the inner scheduler.
func (s *Swapper) Len() int { return s.Inner.Len() }

// QueuedBytes delegates to the inner scheduler.
func (s *Swapper) QueuedBytes(flow int) float64 { return s.Inner.QueuedBytes(flow) }

// PacketPoolSafe reports whether the current inner scheduler declares
// packet recycling safe (sched.PoolSafe).
func (s *Swapper) PacketPoolSafe() bool { return sched.PoolSafeScheduler(s.Inner) }
