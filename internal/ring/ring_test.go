package ring_test

import (
	"testing"

	"repro/internal/ring"
)

func TestRingFillAndWrap(t *testing.T) {
	r := ring.New[int](4)
	if r.Cap() != 4 || r.Len() != 0 {
		t.Fatalf("fresh ring: cap %d len %d", r.Cap(), r.Len())
	}
	for i := 1; i <= 3; i++ {
		r.Push(i)
	}
	if got := r.Slice(); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("partial fill: %v", got)
	}
	if r.Overwritten() != 0 {
		t.Fatalf("overwritten before wrap: %d", r.Overwritten())
	}
	for i := 4; i <= 10; i++ {
		r.Push(i)
	}
	if got := r.Slice(); len(got) != 4 || got[0] != 7 || got[3] != 10 {
		t.Fatalf("after wrap: %v", got)
	}
	if r.Overwritten() != 6 {
		t.Fatalf("overwritten = %d, want 6", r.Overwritten())
	}
	if r.At(1) != 8 {
		t.Fatalf("At(1) = %d, want 8", r.At(1))
	}
	sum := 0
	r.Do(func(v int) { sum += v })
	if sum != 7+8+9+10 {
		t.Fatalf("Do sum = %d", sum)
	}
	r.Reset()
	if r.Len() != 0 || r.Overwritten() != 0 {
		t.Fatalf("reset: len %d overwritten %d", r.Len(), r.Overwritten())
	}
	r.Push(42)
	if r.At(0) != 42 {
		t.Fatalf("push after reset: %d", r.At(0))
	}
}

func TestRingPushZeroAlloc(t *testing.T) {
	r := ring.New[[3]float64](128)
	i := 0.0
	allocs := testing.AllocsPerRun(1000, func() {
		r.Push([3]float64{i, i + 1, i + 2})
		i++
	})
	if allocs != 0 {
		t.Fatalf("Push allocates %v per op, want 0", allocs)
	}
}

func TestRingBadIndexAndCapacityPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	ring.New[int](0)
}
