// Package ring provides a fixed-capacity overwrite ring buffer. It is the
// storage discipline of the observability layer: bounded memory no matter
// how long a run lasts, newest entries win, and the number of overwritten
// entries is accounted so consumers know the window is partial.
//
// The buffer is allocated once at construction; Push never allocates, which
// keeps probe-driven tracing off the allocator on the simulator hot path.
// It is not safe for concurrent use — like the rest of the simulator it
// lives in a single event-queue domain.
package ring

// Ring is a fixed-capacity ring of T keeping the most recent Cap() values.
type Ring[T any] struct {
	buf         []T
	start       int // index of the oldest element
	n           int // elements currently held
	overwritten int64
}

// New returns a ring holding at most capacity elements. capacity must be
// positive.
func New[T any](capacity int) *Ring[T] {
	if capacity <= 0 {
		panic("ring: capacity must be positive")
	}
	return &Ring[T]{buf: make([]T, capacity)}
}

// Push appends v, overwriting the oldest element when full.
func (r *Ring[T]) Push(v T) {
	if r.n < len(r.buf) {
		i := r.start + r.n
		if i >= len(r.buf) {
			i -= len(r.buf)
		}
		r.buf[i] = v
		r.n++
		return
	}
	r.buf[r.start] = v
	r.start++
	if r.start == len(r.buf) {
		r.start = 0
	}
	r.overwritten++
}

// Len returns the number of elements currently held.
func (r *Ring[T]) Len() int { return r.n }

// Cap returns the fixed capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Overwritten returns how many elements have been displaced by Push since
// construction (or the last Reset).
func (r *Ring[T]) Overwritten() int64 { return r.overwritten }

// At returns the i-th element in chronological order (0 = oldest held).
func (r *Ring[T]) At(i int) T {
	if i < 0 || i >= r.n {
		panic("ring: index out of range")
	}
	j := r.start + i
	if j >= len(r.buf) {
		j -= len(r.buf)
	}
	return r.buf[j]
}

// Do calls fn on every held element in chronological order.
func (r *Ring[T]) Do(fn func(T)) {
	for i := 0; i < r.n; i++ {
		fn(r.At(i))
	}
}

// Slice returns the held elements in chronological order as a fresh slice.
func (r *Ring[T]) Slice() []T {
	out := make([]T, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.At(i)
	}
	return out
}

// Reset empties the ring (capacity and backing array are kept).
func (r *Ring[T]) Reset() {
	var zero T
	for i := range r.buf {
		r.buf[i] = zero
	}
	r.start, r.n, r.overwritten = 0, 0, 0
}
