// Package schedtest drives a scheduler over a capacity process with a
// scripted or generated arrival pattern and collects the resulting service
// records. It is shared by the unit/property tests of the scheduler
// packages and by the Table 1 experiments.
package schedtest

import (
	"math/rand"

	"repro/internal/eventq"
	"repro/internal/sched"
	"repro/internal/server"
	"repro/internal/sim"
)

// Arrival scripts one packet.
type Arrival struct {
	At    float64
	Flow  int
	Bytes float64
	Rate  float64 // optional per-packet rate
}

// Result carries the artifacts of a drive.
type Result struct {
	Q    *eventq.Queue
	Link *sim.Link
	Mon  *sim.Monitor
	Sink *sim.Sink
}

// Drive plays the scripted arrivals into a fresh link that uses sch and
// proc, runs the event queue to completion, and returns the monitors.
// Flows must already be registered on sch.
func Drive(sch sched.Interface, proc server.Process, arrivals []Arrival) *Result {
	return DriveWith(sch, proc, arrivals, nil)
}

// DriveWith is Drive with a pre-run hook: setup (if non-nil) runs on the
// freshly wired link before any arrival is scheduled, so callers can
// attach instrumentation — a scheduler probe, an obs.Observer — to an
// otherwise identical run. The probe-transparency conformance tests use
// it to compare instrumented and bare replays of the same workload.
func DriveWith(sch sched.Interface, proc server.Process, arrivals []Arrival, setup func(*sim.Link)) *Result {
	q := &eventq.Queue{}
	sink := sim.NewSink(q)
	link := sim.NewLink(q, "test", sch, proc, sink)
	mon := sim.MonitorAll(link)
	if setup != nil {
		setup(link)
	}
	for _, a := range arrivals {
		a := a
		q.At(a.At, func() {
			link.Deliver(&sim.Frame{
				Flow:    a.Flow,
				Bytes:   a.Bytes,
				Rate:    a.Rate,
				Created: q.Now(),
			})
		})
	}
	q.Run()
	return &Result{Q: q, Link: link, Mon: mon, Sink: sink}
}

// FlowSpec parameterizes random workload generation.
type FlowSpec struct {
	Flow   int
	Weight float64
	// MaxBytes bounds packet sizes; sizes are drawn uniformly from
	// [MaxBytes/4, MaxBytes].
	MaxBytes float64
}

// RandomBacklogged generates a bursty arrival pattern in which all flows
// are kept heavily backlogged near t=0 (every flow dumps `n` packets in a
// short window), which is the regime the fairness bound of Theorem 1 is
// about.
func RandomBacklogged(rng *rand.Rand, flows []FlowSpec, n int) []Arrival {
	var out []Arrival
	for _, f := range flows {
		for i := 0; i < n; i++ {
			out = append(out, Arrival{
				At:    rng.Float64() * 1e-3, // all within the first millisecond
				Flow:  f.Flow,
				Bytes: f.MaxBytes/4 + rng.Float64()*f.MaxBytes*3/4,
			})
		}
	}
	return out
}

// RandomSporadic generates arrivals spread over `horizon` seconds at
// roughly the weight-implied rates, so flows alternate between backlogged
// and idle — the regime for busy-period bookkeeping bugs.
func RandomSporadic(rng *rand.Rand, flows []FlowSpec, n int, horizon float64) []Arrival {
	var out []Arrival
	for _, f := range flows {
		t := rng.Float64() * horizon / float64(n)
		for i := 0; i < n; i++ {
			size := f.MaxBytes/4 + rng.Float64()*f.MaxBytes*3/4
			out = append(out, Arrival{At: t, Flow: f.Flow, Bytes: size})
			// Mean interarrival ≈ size/weight, with jitter.
			t += (size / f.Weight) * (0.5 + rng.Float64())
			if t > horizon {
				break
			}
		}
	}
	return out
}
