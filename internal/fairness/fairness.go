// Package fairness measures the empirical fairness of a scheduler run:
// the paper's fairness measure H(f,m) is the supremum of
// |W_f(t1,t2)/r_f − W_m(t1,t2)/r_m| over every interval [t1,t2] in which
// both flows are backlogged, where a packet counts toward W only if its
// service starts and finishes inside the interval (§1.2).
//
// The computation is exact: given the per-packet service records and the
// per-flow backlogged intervals captured by a sim.Monitor, it examines all
// candidate interval endpoints (service starts for t1, service ends for
// t2) within each jointly backlogged interval.
package fairness

import (
	"math"
	"sort"

	"repro/internal/sim"
)

// Intersect returns the pairwise intersection of two sorted interval sets.
func Intersect(a, b []sim.Interval) []sim.Interval {
	var out []sim.Interval
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		lo := math.Max(a[i].Start, b[j].Start)
		hi := math.Min(a[i].End, b[j].End)
		if lo < hi {
			out = append(out, sim.Interval{Start: lo, End: hi})
		}
		if a[i].End < b[j].End {
			i++
		} else {
			j++
		}
	}
	return out
}

// MaxUnfairness returns the empirical H(f,m): the maximum of
// |W_f(t1,t2)/r_f − W_m(t1,t2)/r_m| over sub-intervals of the jointly
// backlogged intervals. recs must be in completion order (as recorded by a
// sim.Monitor); rf and rm are the flow weights.
func MaxUnfairness(recs []sim.ServiceRecord, fIv, mIv []sim.Interval, f, m int, rf, rm float64) float64 {
	joint := Intersect(fIv, mIv)
	worst := 0.0
	for _, iv := range joint {
		if d := maxOverInterval(recs, iv, f, m, rf, rm); d > worst {
			worst = d
		}
	}
	return worst
}

// rec is a normalized service completion: +bytes/rf for flow f, −bytes/rm
// for flow m.
type rec struct {
	start, end float64
	delta      float64
}

func maxOverInterval(recs []sim.ServiceRecord, iv sim.Interval, f, m int, rf, rm float64) float64 {
	// Packets of f or m fully served within the joint interval.
	var rs []rec
	for _, r := range recs {
		if r.Start < iv.Start || r.End > iv.End {
			continue
		}
		switch r.Flow {
		case f:
			rs = append(rs, rec{r.Start, r.End, r.Bytes / rf})
		case m:
			rs = append(rs, rec{r.Start, r.End, -r.Bytes / rm})
		}
	}
	if len(rs) == 0 {
		return 0
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].end < rs[j].end })

	// Candidate t1 values: just before each service start (and the
	// interval start). For each t1, sweep t2 over service completions and
	// track the running normalized difference; its max |value| over all
	// (t1, t2) pairs is the answer.
	t1s := make([]float64, 0, len(rs)+1)
	t1s = append(t1s, iv.Start)
	for _, r := range rs {
		t1s = append(t1s, r.start)
	}
	sort.Float64s(t1s)
	t1s = dedup(t1s)

	worst := 0.0
	for _, t1 := range t1s {
		sum := 0.0
		for _, r := range rs {
			if r.start >= t1 {
				sum += r.delta
				if a := math.Abs(sum); a > worst {
					worst = a
				}
			}
		}
	}
	return worst
}

func dedup(xs []float64) []float64 {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// MonitorUnfairness computes H(f,m) from a monitor and the flow weights.
// For a capped monitor that wrapped, the measure covers the retained
// (newest) record window in chronological order.
func MonitorUnfairness(mon *sim.Monitor, f, m int, rf, rm float64) float64 {
	return MaxUnfairness(mon.ServiceRecords(), mon.BackloggedIntervals(f), mon.BackloggedIntervals(m), f, m, rf, rm)
}

// NormalizedThroughput returns W_f(t1,t2)/r_f computed from service
// records (packets fully served within [t1,t2]).
func NormalizedThroughput(recs []sim.ServiceRecord, flow int, rf, t1, t2 float64) float64 {
	sum := 0.0
	for _, r := range recs {
		if r.Flow == flow && r.Start >= t1 && r.End <= t2 {
			sum += r.Bytes
		}
	}
	return sum / rf
}
