package fairness

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestIntersect(t *testing.T) {
	a := []sim.Interval{{Start: 0, End: 5}, {Start: 10, End: 20}}
	b := []sim.Interval{{Start: 3, End: 12}, {Start: 15, End: 16}, {Start: 25, End: 30}}
	got := Intersect(a, b)
	want := []sim.Interval{{Start: 3, End: 5}, {Start: 10, End: 12}, {Start: 15, End: 16}}
	if len(got) != len(want) {
		t.Fatalf("intersect = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("interval %d = %v, want %v", i, got[i], want[i])
		}
	}
	if out := Intersect(nil, b); out != nil {
		t.Errorf("empty intersect = %v", out)
	}
}

func TestMaxUnfairnessHandComputed(t *testing.T) {
	// Flow 1 (r=1) and flow 2 (r=1) alternate unit packets, then flow 1
	// gets three in a row: the worst window captures those three.
	recs := []sim.ServiceRecord{
		{Flow: 1, Start: 0, End: 1, Bytes: 1},
		{Flow: 2, Start: 1, End: 2, Bytes: 1},
		{Flow: 1, Start: 2, End: 3, Bytes: 1},
		{Flow: 1, Start: 3, End: 4, Bytes: 1},
		{Flow: 1, Start: 4, End: 5, Bytes: 1},
		{Flow: 2, Start: 5, End: 6, Bytes: 1},
	}
	iv := []sim.Interval{{Start: 0, End: 6}}
	h := MaxUnfairness(recs, iv, iv, 1, 2, 1, 1)
	if h != 3 {
		t.Errorf("H = %v, want 3 (the 3-packet run)", h)
	}
}

func TestMaxUnfairnessRespectsBacklog(t *testing.T) {
	// Same records, but flow 2 is only backlogged during [0,2]: the
	// 3-packet run falls outside any jointly backlogged interval.
	recs := []sim.ServiceRecord{
		{Flow: 1, Start: 0, End: 1, Bytes: 1},
		{Flow: 2, Start: 1, End: 2, Bytes: 1},
		{Flow: 1, Start: 2, End: 3, Bytes: 1},
		{Flow: 1, Start: 3, End: 4, Bytes: 1},
		{Flow: 1, Start: 4, End: 5, Bytes: 1},
	}
	f1 := []sim.Interval{{Start: 0, End: 5}}
	f2 := []sim.Interval{{Start: 0, End: 2}}
	h := MaxUnfairness(recs, f1, f2, 1, 2, 1, 1)
	if h != 1 {
		t.Errorf("H = %v, want 1 (only [0,2] counts)", h)
	}
}

func TestMaxUnfairnessWeighted(t *testing.T) {
	// Flow 1 weight 1, flow 2 weight 2: a fair schedule gives flow 2
	// twice the bytes; normalized difference should be small.
	recs := []sim.ServiceRecord{
		{Flow: 2, Start: 0, End: 1, Bytes: 2},
		{Flow: 1, Start: 1, End: 2, Bytes: 1},
		{Flow: 2, Start: 2, End: 3, Bytes: 2},
		{Flow: 1, Start: 3, End: 4, Bytes: 1},
	}
	iv := []sim.Interval{{Start: 0, End: 4}}
	h := MaxUnfairness(recs, iv, iv, 1, 2, 1, 2)
	if h != 1 {
		t.Errorf("H = %v, want 1 (one normalized packet)", h)
	}
}

func TestPartialServiceExcluded(t *testing.T) {
	// A packet whose service starts before t1 or ends after t2 must not
	// count: the paper's definition requires start AND finish inside.
	recs := []sim.ServiceRecord{
		{Flow: 1, Start: 0, End: 2, Bytes: 10}, // will straddle any [1, ...] window
		{Flow: 2, Start: 2, End: 3, Bytes: 1},
	}
	if got := NormalizedThroughput(recs, 1, 1, 1, 3); got != 0 {
		t.Errorf("straddling packet counted: %v", got)
	}
	if got := NormalizedThroughput(recs, 1, 1, 0, 2); got != 10 {
		t.Errorf("contained packet missed: %v", got)
	}
}

func TestNoJointBacklog(t *testing.T) {
	recs := []sim.ServiceRecord{{Flow: 1, Start: 0, End: 1, Bytes: 1}}
	h := MaxUnfairness(recs,
		[]sim.Interval{{Start: 0, End: 1}},
		[]sim.Interval{{Start: 2, End: 3}},
		1, 2, 1, 1)
	if h != 0 {
		t.Errorf("disjoint backlogs should give H = 0, got %v", h)
	}
}

func TestUnfairnessSymmetricIsh(t *testing.T) {
	recs := []sim.ServiceRecord{
		{Flow: 1, Start: 0, End: 1, Bytes: 3},
		{Flow: 2, Start: 1, End: 2, Bytes: 1},
	}
	iv := []sim.Interval{{Start: 0, End: 2}}
	h12 := MaxUnfairness(recs, iv, iv, 1, 2, 1, 1)
	h21 := MaxUnfairness(recs, iv, iv, 2, 1, 1, 1)
	if math.Abs(h12-h21) > 1e-12 {
		t.Errorf("|H(1,2)-H(2,1)| = %v", math.Abs(h12-h21))
	}
	if h12 != 3 {
		t.Errorf("H = %v, want 3", h12)
	}
}
