// Package tracelog exports simulation series as CSV for plotting — the
// raw data behind the paper's figures. It understands the two figure
// shapes the experiments produce: event series (Figure 1(b): packet
// sequence numbers vs arrival time per source) and sampled series
// (Figure 3(b): throughput per connection over time), plus a generic
// per-packet record dump from a link monitor.
package tracelog

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"repro/internal/obs"
	"repro/internal/sim"
)

// WriteEventSeries writes one row per event: series label, index within
// the series (the "sequence number" axis of Fig 1b), and event time.
// Series are emitted in sorted label order for determinism.
func WriteEventSeries(w io.Writer, series map[string][]float64) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "series,index,time"); err != nil {
		return err
	}
	labels := make([]string, 0, len(series))
	for l := range series {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		for i, t := range series[l] {
			if _, err := fmt.Fprintf(bw, "%s,%d,%.9f\n", l, i+1, t); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Sample is one multi-column point of a sampled series.
type Sample struct {
	Time   float64
	Values []float64
}

// WriteSampledSeries writes a header of column names followed by one row
// per sample (the Fig 3b shape).
func WriteSampledSeries(w io.Writer, columns []string, samples []Sample) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprint(bw, "time"); err != nil {
		return err
	}
	for _, c := range columns {
		if _, err := fmt.Fprintf(bw, ",%s", c); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(bw); err != nil {
		return err
	}
	for _, s := range samples {
		if len(s.Values) != len(columns) {
			return fmt.Errorf("tracelog: sample at %v has %d values for %d columns",
				s.Time, len(s.Values), len(columns))
		}
		if _, err := fmt.Fprintf(bw, "%.9f", s.Time); err != nil {
			return err
		}
		for _, v := range s.Values {
			if _, err := fmt.Fprintf(bw, ",%.9f", v); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteServiceRecords dumps a monitor's per-packet service records
// (flow, service start, service end, bytes) as CSV.
func WriteServiceRecords(w io.Writer, recs []sim.ServiceRecord) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "flow,start,end,bytes"); err != nil {
		return err
	}
	for _, r := range recs {
		if _, err := fmt.Fprintf(bw, "%d,%.9f,%.9f,%.3f\n", r.Flow, r.Start, r.End, r.Bytes); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteTraceEvents dumps an obs trace ring as CSV, oldest first — the
// file behind sfqsim --trace. The ring keeps only the newest events; when
// overwritten > 0 a comment row records how many earlier events the
// window displaced, so a truncated trace is never mistaken for a full one.
func WriteTraceEvents(w io.Writer, r *obs.TraceRing) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "time,kind,flow,seq,bytes,cause"); err != nil {
		return err
	}
	if n := r.Overwritten(); n > 0 {
		if _, err := fmt.Fprintf(bw, "# %d earlier events displaced by the trace ring\n", n); err != nil {
			return err
		}
	}
	var werr error
	r.Do(func(e obs.Event) {
		if werr != nil {
			return
		}
		_, werr = fmt.Fprintf(bw, "%.9f,%s,%d,%d,%.3f,%s\n",
			e.Time, e.Kind, e.Flow, e.Seq, e.Bytes, e.Cause)
	})
	if werr != nil {
		return werr
	}
	return bw.Flush()
}

// WriteFlowMetrics dumps the per-flow rows of metric snapshots as CSV —
// one row per (link, flow), links and flows already sorted by
// Registry.Snapshot. Delay columns are the histogram's exact aggregates
// plus its octave-resolution p50/p99 upper bounds.
func WriteFlowMetrics(w io.Writer, snaps []obs.Snapshot) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw,
		"link,flow,arrived_pkts,arrived_bytes,served_pkts,served_bytes,dropped_pkts,rate_Bps,hwm_bytes,delay_mean,delay_min,delay_max"); err != nil {
		return err
	}
	for _, s := range snaps {
		for _, f := range s.Flows {
			mean := 0.0
			if f.Delay.Count > 0 {
				mean = f.Delay.Sum / float64(f.Delay.Count)
			}
			if _, err := fmt.Fprintf(bw, "%s,%d,%d,%.3f,%d,%.3f,%d,%.3f,%.3f,%.9f,%.9f,%.9f\n",
				s.Link, f.Flow, f.ArrivedPkts, f.ArrivedBytes, f.ServedPkts, f.ServedBytes,
				f.DroppedPkts, f.RateBps, f.HWMBytes, mean, f.Delay.Min, f.Delay.Max); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
