// Package tracelog exports simulation series as CSV for plotting — the
// raw data behind the paper's figures. It understands the two figure
// shapes the experiments produce: event series (Figure 1(b): packet
// sequence numbers vs arrival time per source) and sampled series
// (Figure 3(b): throughput per connection over time), plus a generic
// per-packet record dump from a link monitor.
package tracelog

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"repro/internal/sim"
)

// WriteEventSeries writes one row per event: series label, index within
// the series (the "sequence number" axis of Fig 1b), and event time.
// Series are emitted in sorted label order for determinism.
func WriteEventSeries(w io.Writer, series map[string][]float64) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "series,index,time"); err != nil {
		return err
	}
	labels := make([]string, 0, len(series))
	for l := range series {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		for i, t := range series[l] {
			if _, err := fmt.Fprintf(bw, "%s,%d,%.9f\n", l, i+1, t); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Sample is one multi-column point of a sampled series.
type Sample struct {
	Time   float64
	Values []float64
}

// WriteSampledSeries writes a header of column names followed by one row
// per sample (the Fig 3b shape).
func WriteSampledSeries(w io.Writer, columns []string, samples []Sample) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprint(bw, "time"); err != nil {
		return err
	}
	for _, c := range columns {
		if _, err := fmt.Fprintf(bw, ",%s", c); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(bw); err != nil {
		return err
	}
	for _, s := range samples {
		if len(s.Values) != len(columns) {
			return fmt.Errorf("tracelog: sample at %v has %d values for %d columns",
				s.Time, len(s.Values), len(columns))
		}
		if _, err := fmt.Fprintf(bw, "%.9f", s.Time); err != nil {
			return err
		}
		for _, v := range s.Values {
			if _, err := fmt.Fprintf(bw, ",%.9f", v); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteServiceRecords dumps a monitor's per-packet service records
// (flow, service start, service end, bytes) as CSV.
func WriteServiceRecords(w io.Writer, recs []sim.ServiceRecord) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "flow,start,end,bytes"); err != nil {
		return err
	}
	for _, r := range recs {
		if _, err := fmt.Fprintf(bw, "%d,%.9f,%.9f,%.3f\n", r.Flow, r.Start, r.End, r.Bytes); err != nil {
			return err
		}
	}
	return bw.Flush()
}
