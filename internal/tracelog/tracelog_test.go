package tracelog_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/tracelog"
)

func TestWriteEventSeries(t *testing.T) {
	var buf bytes.Buffer
	err := tracelog.WriteEventSeries(&buf, map[string][]float64{
		"src3": {0.5, 0.6},
		"src2": {0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	want := []string{
		"series,index,time",
		"src2,1,0.100000000",
		"src3,1,0.500000000",
		"src3,2,0.600000000",
	}
	if len(lines) != len(want) {
		t.Fatalf("lines = %v", lines)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}
}

func TestWriteSampledSeries(t *testing.T) {
	var buf bytes.Buffer
	err := tracelog.WriteSampledSeries(&buf, []string{"w1", "w2"}, []tracelog.Sample{
		{Time: 0.1, Values: []float64{1, 2}},
		{Time: 0.2, Values: []float64{3, 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "time,w1,w2" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != 3 || !strings.HasPrefix(lines[1], "0.100000000,1") {
		t.Errorf("rows = %v", lines[1:])
	}
}

func TestWriteSampledSeriesShapeMismatch(t *testing.T) {
	var buf bytes.Buffer
	err := tracelog.WriteSampledSeries(&buf, []string{"a"}, []tracelog.Sample{
		{Time: 0, Values: []float64{1, 2}},
	})
	if err == nil {
		t.Error("column mismatch accepted")
	}
}

func TestWriteServiceRecords(t *testing.T) {
	var buf bytes.Buffer
	err := tracelog.WriteServiceRecords(&buf, []sim.ServiceRecord{
		{Flow: 1, Start: 0, End: 0.5, Bytes: 100},
		{Flow: 2, Start: 0.5, End: 1, Bytes: 200},
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 || lines[0] != "flow,start,end,bytes" {
		t.Fatalf("output = %q", buf.String())
	}
	if lines[2] != "2,0.500000000,1.000000000,200.000" {
		t.Errorf("row = %q", lines[2])
	}
}

// failWriter errors after n bytes, exercising the error paths.
type failWriter struct{ left int }

func (w *failWriter) Write(p []byte) (int, error) {
	if len(p) > w.left {
		n := w.left
		w.left = 0
		return n, fmt.Errorf("disk full")
	}
	w.left -= len(p)
	return len(p), nil
}

func TestWriteErrorsPropagate(t *testing.T) {
	series := map[string][]float64{"a": {1, 2, 3}}
	if err := tracelog.WriteEventSeries(&failWriter{left: 4}, series); err == nil {
		t.Error("event series write error swallowed")
	}
	samples := []tracelog.Sample{{Time: 1, Values: []float64{2}}}
	if err := tracelog.WriteSampledSeries(&failWriter{left: 4}, []string{"c"}, samples); err == nil {
		t.Error("sampled series write error swallowed")
	}
	recs := []sim.ServiceRecord{{Flow: 1, Start: 0, End: 1, Bytes: 2}}
	if err := tracelog.WriteServiceRecords(&failWriter{left: 4}, recs); err == nil {
		t.Error("service record write error swallowed")
	}
}
