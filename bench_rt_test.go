package repro_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/rt"
	"repro/internal/sched"
)

// BenchmarkRuntimeThroughput measures the real-time data path end to end:
// workers pinned to shards push batches through EnqueueBatch/DequeueBatch
// against the wall clock, reusing dequeued packets (SFQ is pool-safe), so
// the steady state is allocation-free — the benchdiff gate holds allocs/op
// at zero. One op is one packet through the full enqueue+dequeue cycle;
// aggregate requests/s is 1e9/ns_per_op. The grid crosses shard counts
// with goroutine counts: G=S is the pinned-worker fast path, G=2S makes
// two workers contend for every shard lock.
func BenchmarkRuntimeThroughput(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		for _, mult := range []int{1, 2} {
			workers := shards * mult
			b.Run(fmt.Sprintf("S=%d/G=%d", shards, workers), func(b *testing.B) {
				benchRuntimeThroughput(b, shards, workers)
			})
		}
	}
}

func benchRuntimeThroughput(b *testing.B, shards, workers int) {
	r, err := rt.New("sfq", sched.WithShards(shards), sched.WithClock(rt.WallClock()))
	if err != nil {
		b.Fatal(err)
	}
	// Register flowsPerShard flows on every shard (flow ids are hashed, so
	// scan ids until each shard has its quota).
	const flowsPerShard = 4
	shardFlows := make([][]int, shards)
	for f, need := 0, shards*flowsPerShard; need > 0; f++ {
		s := r.ShardOf(f)
		if len(shardFlows[s]) < flowsPerShard {
			if err := r.AddFlow(f, float64(len(shardFlows[s])+1)); err != nil {
				b.Fatal(err)
			}
			shardFlows[s] = append(shardFlows[s], f)
			need--
		}
	}
	const batch = 64
	// A standing backlog per shard so concurrent dequeues never spin long.
	for s := 0; s < shards; s++ {
		for i := 0; i < batch; i++ {
			if err := r.Enqueue(&sched.Packet{Flow: shardFlows[s][i%flowsPerShard], Length: 100}); err != nil {
				b.Fatal(err)
			}
		}
	}
	// Per-worker packet sets, allocated before the timer starts; afterwards
	// every round recycles the packets it just dequeued.
	enqBufs := make([][]*sched.Packet, workers)
	deqBufs := make([][]*sched.Packet, workers)
	for w := 0; w < workers; w++ {
		enqBufs[w] = make([]*sched.Packet, batch)
		deqBufs[w] = make([]*sched.Packet, batch)
		flows := shardFlows[w%shards]
		for i := range enqBufs[w] {
			enqBufs[w][i] = &sched.Packet{Flow: flows[i%len(flows)], Length: 100}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := w % shards
			enq, deq := enqBufs[w], deqBufs[w]
			mine := b.N / workers
			if w < b.N%workers {
				mine++
			}
			for done := 0; done < mine; {
				n := batch
				if mine-done < n {
					n = mine - done
				}
				if acc, err := r.EnqueueBatch(enq[:n]); err != nil || acc != n {
					b.Errorf("worker %d: enqueue batch: %d/%d, %v", w, acc, n, err)
					return
				}
				// Another worker on this shard may momentarily hold the
				// packets we just queued; keep popping until we got n back.
				got := 0
				for got < n {
					got += r.DequeueBatch(s, deq[got:n])
				}
				copy(enq, deq[:n])
				done += n
			}
		}(w)
	}
	wg.Wait()
}
