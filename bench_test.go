package repro_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/conformance"
	"repro/internal/core"
	"repro/internal/eventq"
	"repro/internal/experiments"
	_ "repro/internal/pifo" // registers pifo-* and the UPS disciplines
	"repro/internal/qos"
	"repro/internal/sched"
	"repro/internal/server"
)

// One benchmark per paper table/figure: each iteration regenerates the
// artifact (at reduced scale where a scale knob exists, so a -bench run
// stays laptop-sized). Run `go test -bench=. -benchmem` to time them, or
// `go run ./cmd/experiments` to print the paper-style rows at full scale.

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table1(int64(i + 1))
		sink(b, r.Got["H_const_SFQ"])
	}
}

func BenchmarkExample1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink(b, experiments.Example1().Got["H_WFQ"])
	}
}

func BenchmarkExample2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink(b, experiments.Example2().Got["Wf_WFQ"])
	}
}

func BenchmarkFig1b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig1b(experiments.Fig1Config{Scale: 1, Seed: int64(i + 1)})
		sink(b, r.Got["src2_SFQ"])
	}
}

func BenchmarkFig2a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink(b, experiments.Fig2a().Got["delta_32Kb/s_10"])
	}
}

func BenchmarkFig2b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig2b(experiments.Fig2bConfig{Scale: 0.02, Seed: int64(i + 1)})
		sink(b, r.Got["ratio_4"])
	}
}

func BenchmarkFig3b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig3b(experiments.Fig3Config{Scale: 0.2, Seed: int64(i + 1)})
		sink(b, r.Got["phase1_r31"])
	}
}

func BenchmarkSCFQDelay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink(b, experiments.SCFQDelay(int64(i + 1)).Got["gap_ms"])
	}
}

func BenchmarkWFQDelta(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink(b, experiments.WFQDelta().Got["low_ms"])
	}
}

func BenchmarkExample3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink(b, experiments.Example3().Got["H_CD"])
	}
}

func BenchmarkDelayShift(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.DelayShift(experiments.DelayShiftConfig{Scale: 0.5, Seed: int64(i + 1)})
		sink(b, r.Got["measured_hier_ms"])
	}
}

func BenchmarkResidual(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink(b, experiments.Residual(int64(i + 1)).Got["min_slack_ms"])
	}
}

func BenchmarkE2EBound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.EndToEndBound(experiments.E2EConfig{Scale: 0.2, Seed: int64(i + 1)})
		sink(b, r.Got["measured_max_ms"])
	}
}

func BenchmarkGenRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink(b, experiments.GenRate(int64(i + 1)).Got["max_aggregate"])
	}
}

func BenchmarkEBFTail(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.EBFTail(experiments.EBFTailConfig{Scale: 0.1, Seed: int64(i + 1)})
		sink(b, r.Got["measured_max_ms"])
	}
}

func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink(b, experiments.AblationTieBreak(int64(i + 1)).Got["fifo_ms"])
		sink(b, experiments.AblationWFQClock(int64(i + 1)).Got["Wm_SFQ"])
		sink(b, experiments.AblationHierarchyOverhead(int64(i + 1)).Got["tree_r31"])
	}
}

func sink(b *testing.B, v float64) {
	if v != v { // NaN guard keeps the compiler from eliding the work
		b.Fatal("NaN result")
	}
}

// Scheduler micro-benchmarks back the paper's complexity discussion:
// SFQ/SCFQ are a tag computation plus an O(log Q) heap operation per
// packet, WFQ pays for the fluid GPS simulation on top, and DRR is O(1)
// amortized.

func benchScheduler(b *testing.B, mk func() sched.Interface, nflows int) {
	s := mk()
	for f := 0; f < nflows; f++ {
		if err := s.AddFlow(f, float64(f%7+1)*100); err != nil {
			b.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(1))
	// Keep a standing backlog so Dequeue always succeeds.
	now := 0.0
	for f := 0; f < nflows; f++ {
		p := &sched.Packet{Flow: f, Length: 500}
		if err := s.Enqueue(now, p); err != nil {
			b.Fatal(err)
		}
	}
	// Recycle packets exactly as a link would: only when the scheduler
	// declares recycling safe. With the typed heaps this makes the whole
	// enqueue/dequeue cycle allocation-free for the tag-based disciplines.
	var pool sched.PacketPool
	poolOK := sched.PoolSafeScheduler(s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += 1e-5
		var p *sched.Packet
		if poolOK {
			p = pool.Get()
		} else {
			p = &sched.Packet{}
		}
		p.Flow = rng.Intn(nflows)
		p.Length = 100 + float64(rng.Intn(1400))
		if err := s.Enqueue(now, p); err != nil {
			b.Fatal(err)
		}
		out, ok := s.Dequeue(now)
		if !ok {
			b.Fatal("scheduler ran dry")
		}
		if poolOK {
			pool.Put(out)
		}
	}
}

func BenchmarkSchedulerOps(b *testing.B) {
	algos := []struct {
		name string
		mk   func() sched.Interface
	}{
		{"SFQ", func() sched.Interface { return core.New() }},
		{"FlowSFQ", func() sched.Interface { return core.NewFlowSFQ() }},
		{"SCFQ", func() sched.Interface { return sched.NewSCFQ() }},
		{"WFQ", func() sched.Interface { return sched.NewWFQ(1e6) }},
		{"FQS", func() sched.Interface { return sched.NewFQS(1e6) }},
		{"DRR", func() sched.Interface { return sched.NewDRR(2000) }},
		{"VC", func() sched.Interface { return sched.NewVirtualClock() }},
		{"FA", func() sched.Interface { return sched.NewFairAirport() }},
		{"FIFO", func() sched.Interface { return sched.NewFIFO() }},
	}
	for _, a := range algos {
		for _, q := range []int{16, 256, 4096} {
			b.Run(fmt.Sprintf("%s/Q=%d", a.name, q), func(b *testing.B) {
				benchScheduler(b, a.mk, q)
			})
		}
	}
}

// BenchmarkScaleFlows measures the payoff of the flow-indexed core: cost
// per enqueue/dequeue cycle as the number of backlogged flows grows to
// 1M. The packet-level heaps this core replaced were O(log total-queued-
// packets); FlowQ/FlowHeap make every heap operation O(log backlogged-
// flows) and allocation-free in steady state, so these timings should grow
// only logarithmically in B while allocs/op stays at zero (the benchdiff
// gate enforces the latter).
func BenchmarkScaleFlows(b *testing.B) {
	algos := []struct {
		name string
		mk   func() sched.Interface
	}{
		{"SFQ", func() sched.Interface { return core.New() }},
		{"WFQ", func() sched.Interface { return sched.NewWFQ(1e6) }},
		{"SCFQ", func() sched.Interface { return sched.NewSCFQ() }},
		// The PIFO layer must keep the flow core's O(log B) and 0 allocs/op:
		// a classic rank function (SFQ) and a UPS discipline (LSTF).
		{"PIFO-SFQ", func() sched.Interface { return sched.MustNew("pifo-sfq") }},
		{"LSTF", func() sched.Interface { return sched.MustNew("lstf") }},
	}
	for _, a := range algos {
		for _, nf := range []int{1000, 10000, 100000} {
			b.Run(fmt.Sprintf("%s/B=%dk", a.name, nf/1000), func(b *testing.B) {
				benchScheduler(b, a.mk, nf)
			})
		}
	}
	// The million-flow point pins O(log B) growth and 0 allocs/op at the
	// extreme; one representative discipline, because the dominant cost is
	// faulting in ~1M live flow+packet objects, which would multiply the
	// gate's wall-clock per algorithm without adding signal.
	b.Run("SFQ/B=1000k", func(b *testing.B) {
		benchScheduler(b, func() sched.Interface { return core.New() }, 1000000)
	})
}

// BenchmarkHSFQDepth measures hierarchical scheduling cost per tree depth.
func BenchmarkHSFQDepth(b *testing.B) {
	for _, depth := range []int{1, 3, 6} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			h := core.NewHSFQ()
			parent := (*core.Class)(nil)
			for d := 0; d < depth-1; d++ {
				var err error
				parent, err = h.NewClass(parent, fmt.Sprintf("c%d", d), 1)
				if err != nil {
					b.Fatal(err)
				}
			}
			for f := 0; f < 8; f++ {
				if err := h.AddFlowTo(parent, f, float64(f+1)); err != nil {
					b.Fatal(err)
				}
			}
			now := 0.0
			for f := 0; f < 8; f++ {
				if err := h.Enqueue(now, &sched.Packet{Flow: f, Length: 500}); err != nil {
					b.Fatal(err)
				}
			}
			rng := rand.New(rand.NewSource(2))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				now += 1e-5
				if err := h.Enqueue(now, &sched.Packet{Flow: rng.Intn(8), Length: 500}); err != nil {
					b.Fatal(err)
				}
				if _, ok := h.Dequeue(now); !ok {
					b.Fatal("ran dry")
				}
			}
		})
	}
}

// BenchmarkHierTree measures the generic composition layer's steady-state
// cost: an SFQ root over DRR and EDD sinks (real packets live in the sink
// disciplines, the root schedules the sinks), and a tree of PIFOs (the
// root is itself a discipline scheduling pseudo-packets). Both must stay
// allocation-free: sink packets recycle through the shared pool and
// interior pseudo-packets through the tree's free list (the benchdiff
// allocs gate enforces this).
func BenchmarkHierTree(b *testing.B) {
	for _, tc := range []struct{ name, spec string }{
		{"sfq-drr-edd", "hier:sfq(drr,edd)"},
		{"pifo-of-pifos", "hier:pifo-sfq(pifo-sfq,pifo-sfq)"},
	} {
		for _, q := range []int{16, 256} {
			b.Run(fmt.Sprintf("%s/Q=%d", tc.name, q), func(b *testing.B) {
				benchScheduler(b, func() sched.Interface { return sched.MustNew(tc.spec) }, q)
			})
		}
	}
}

// BenchmarkGPSSimulation isolates the cost WFQ pays for the fluid
// reference system as flow count grows.
func BenchmarkGPSSimulation(b *testing.B) {
	for _, q := range []int{16, 1024} {
		b.Run(fmt.Sprintf("Q=%d", q), func(b *testing.B) {
			benchScheduler(b, func() sched.Interface { return sched.NewWFQ(1e6) }, q)
		})
	}
}

// BenchmarkEventQueue times the discrete-event core at steady queue depth:
// each iteration schedules one event past the horizon and executes the
// earliest one. The AtCall path plus the typed 4-ary heap make this
// allocation-free.
func BenchmarkEventQueue(b *testing.B) {
	for _, depth := range []int{16, 4096} {
		b.Run(fmt.Sprintf("Q=%d", depth), func(b *testing.B) {
			var q eventq.Queue
			tick := func(any) {}
			horizon := float64(depth) * 1e-6
			for i := 0; i < depth; i++ {
				q.AtCall(float64(i)*1e-6, tick, nil)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q.AtCall(q.Now()+horizon, tick, nil)
				q.Step()
			}
		})
	}
}

// BenchmarkEventWheel pits the hierarchical timing wheel (eventq.Queue)
// against the retired 4-ary heap it replaced (eventq.Heap, kept as the
// differential baseline) at steady pending-set sizes up to one million
// events. Each iteration schedules one event a full horizon out and fires
// the earliest, so the wheel's O(1) bucket insert competes with the heap's
// O(log n) sift; both paths must stay at 0 allocs/op (benchdiff-gated).
// The cancel variant measures handle-based O(1) cancellation under the
// same pending load — the heap offers no cancellation at all (tombstone
// scans were the alternative this replaced).
func BenchmarkEventWheel(b *testing.B) {
	tick := func(any) {}
	for _, depth := range []int{1000, 100000, 1000000} {
		horizon := float64(depth) * 1e-6
		fill := func(q interface{ AtCall(float64, func(any), any) }) {
			for i := 0; i < depth; i++ {
				q.AtCall(float64(i)*1e-6, tick, nil)
			}
		}
		b.Run(fmt.Sprintf("wheel/P=%d", depth), func(b *testing.B) {
			var q eventq.Queue
			fill(&q)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q.AtCall(q.Now()+horizon, tick, nil)
				q.Step()
			}
		})
		b.Run(fmt.Sprintf("heap/P=%d", depth), func(b *testing.B) {
			var h eventq.Heap
			fill(&h)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.AtCall(h.Now()+horizon, tick, nil)
				h.Step()
			}
		})
		b.Run(fmt.Sprintf("cancel/P=%d", depth), func(b *testing.B) {
			var q eventq.Queue
			fill(&q)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q.Cancel(q.Schedule(q.Now()+horizon, tick, nil))
			}
		})
	}
}

// BenchmarkChaosMatrixShard times one cell of the chaos conformance matrix
// — workload + fault-plan generation, the faulted run, the conservation
// audit, and the digest. The parallel matrix runner shards exactly this
// unit across workers, so cell cost × seeds ÷ GOMAXPROCS approximates the
// matrix's wall-clock.
func BenchmarkChaosMatrixShard(b *testing.B) {
	kinds := []conformance.Kind{conformance.Bursty, conformance.Sporadic, conformance.OnOff, conformance.Greedy}
	mk := func(conformance.Workload) sched.Interface { return core.New() }
	for i := 0; i < b.N; i++ {
		d, err := conformance.ChaosReplay(mk, kinds, 12, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		sink(b, float64(len(d)))
	}
}

// BenchmarkServerProcesses times the variable-rate capacity integrators.
func BenchmarkServerProcesses(b *testing.B) {
	procs := []struct {
		name string
		mk   func() server.Process
	}{
		{"const", func() server.Process { return server.NewConstantRate(1e6) }},
		{"onoff", func() server.Process { return server.NewPeriodicOnOff(1e6, 0.01) }},
		{"slotted", func() server.Process {
			return server.NewRandomSlotted(1e6, 0.01, rand.New(rand.NewSource(1)))
		}},
		{"markov", func() server.Process {
			return server.NewMarkovModulated([]float64{5e5, 1e6, 2e6}, 0.01, rand.New(rand.NewSource(1)))
		}},
	}
	for _, p := range procs {
		b.Run(p.name, func(b *testing.B) {
			proc := p.mk()
			now := 0.0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				now = proc.Finish(now, 1000)
			}
		})
	}
}

// BenchmarkConformanceReplay times one full conformance cycle — drive a
// random workload through SFQ, apply the theorem-bound checkers, and replay
// it on the brute-force reference for the differential comparison. This is
// the unit of work the 1000-seed matrix repeats, so later performance PRs
// can judge checker overhead against the BENCH_*.json trajectory.
func BenchmarkConformanceReplay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		w := conformance.Random(rng, conformance.Kind(i%4), 12)
		sch := core.New()
		tr, res, err := conformance.Run(sch, w, nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, check := range []error{
			conformance.CheckAlignment(tr, res.Mon),
			conformance.CheckConservation(tr, sch, w),
			conformance.CheckPerFlowFIFO(tr),
			conformance.CheckWorkConserving(tr, res.Mon),
			conformance.CheckTheorem1(res.Mon, w, qos.SFQFairnessBound),
			conformance.CheckTheorem2(res.Mon, w),
			conformance.CheckTheorem4Delay(tr, res.Mon, w),
		} {
			if check != nil {
				b.Fatal(check)
			}
		}
		rtr, _, err := conformance.Run(conformance.NewRefSFQ(), w, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(rtr.Deq) != len(tr.Deq) {
			b.Fatal("reference replay diverged")
		}
		sink(b, float64(len(tr.Deq)))
	}
}
